package mesh

import (
	"errors"
	"fmt"
	"time"

	"meshlayer/internal/admission"
	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
	"meshlayer/internal/simnet"
	"meshlayer/internal/trace"
	"meshlayer/internal/transport"
)

// AppHandler is the application's request handler, invoked by its
// sidecar for inbound requests. The application responds exactly once,
// possibly after spawning child requests through Sidecar.Call.
type AppHandler func(req *httpsim.Request, respond func(*httpsim.Response))

// ConnClass selects the transport treatment of an outbound request:
// which pooled connection group it uses and with what congestion
// control and packet mark. The cross-layer controller installs a
// classifier mapping priorities to classes; the default is one
// best-effort class for everything.
type ConnClass struct {
	Name    string
	Options transport.Options
}

// DefaultConnClass is the single best-effort class.
var DefaultConnClass = ConnClass{Name: "default", Options: transport.Options{CC: "reno"}}

// InboundFilter observes and may mutate an inbound request before the
// application sees it. ctx carries the server-side connection, whose
// mark/congestion control govern the response bytes.
type InboundFilter func(ctx httpsim.Ctx, req *httpsim.Request)

// OutboundFilter observes and may mutate an outbound request before
// routing.
type OutboundFilter func(req *httpsim.Request)

// Errors surfaced by Sidecar.Call.
var (
	ErrNoService   = errors.New("mesh: unknown destination service")
	ErrNoEndpoints = errors.New("mesh: service has no endpoints")
	ErrTimeout     = errors.New("mesh: request timed out")
)

type poolKey struct {
	addr  simnet.Addr
	class string
}

// Sidecar is the per-pod proxy handling all of the pod's inbound and
// outbound communication.
type Sidecar struct {
	mesh    *Mesh
	pod     *cluster.Pod
	service string
	server  *httpsim.Server
	app     AppHandler

	pools      map[poolKey]*httpsim.Client
	endpoints  map[simnet.Addr]*endpointState
	rrCounters map[string]uint64

	inboundFilters  []InboundFilter
	outboundFilters []OutboundFilter
	connClassifier  func(*httpsim.Request) ConnClass
	connHook        func(*transport.Conn, ConnClass)
	bucket          *tokenBucket
	identity        *Cert

	// Overload protection (internal/admission): the controller is built
	// lazily from the pushed AdmissionPolicy; the deadline index tracks
	// every budget-carrying request regardless of whether admission is
	// enabled.
	admitCtl  *admission.Controller
	admitPol  AdmissionPolicy
	deadlines *admission.Deadlines
}

// InjectSidecar pairs a sidecar with the pod. The pod's service
// identity is its "app" label (falling back to the pod name).
func (m *Mesh) InjectSidecar(pod *cluster.Pod) *Sidecar {
	if _, dup := m.sidecars[pod.Name()]; dup {
		panic(fmt.Sprintf("mesh: pod %q already has a sidecar", pod.Name()))
	}
	service := pod.Label("app")
	if service == "" {
		service = pod.Name()
	}
	sc := &Sidecar{
		mesh:       m,
		pod:        pod,
		service:    service,
		pools:      make(map[poolKey]*httpsim.Client),
		endpoints:  make(map[simnet.Addr]*endpointState),
		rrCounters: make(map[string]uint64),
		deadlines:  admission.NewDeadlines(),
	}
	srv, err := httpsim.NewServer(pod.Host(), InboundPort, sc.handleInbound)
	if err != nil {
		panic(err)
	}
	sc.server = srv
	m.sidecars[pod.Name()] = sc
	return sc
}

// Pod returns the pod this sidecar serves.
func (sc *Sidecar) Pod() *cluster.Pod { return sc.pod }

// ServiceName returns the sidecar's service identity.
func (sc *Sidecar) ServiceName() string { return sc.service }

// RegisterApp installs the application handler for inbound requests.
func (sc *Sidecar) RegisterApp(h AppHandler) { sc.app = h }

// AddInboundFilter appends an inbound filter (run in order).
func (sc *Sidecar) AddInboundFilter(f InboundFilter) {
	sc.inboundFilters = append(sc.inboundFilters, f)
}

// AddOutboundFilter appends an outbound filter (run in order).
func (sc *Sidecar) AddOutboundFilter(f OutboundFilter) {
	sc.outboundFilters = append(sc.outboundFilters, f)
}

// SetConnClassifier installs the per-request connection-class chooser.
func (sc *Sidecar) SetConnClassifier(f func(*httpsim.Request) ConnClass) {
	sc.connClassifier = f
}

// SetConnHook installs a callback invoked whenever the sidecar opens a
// new upstream connection — the cross-layer controller uses it to
// announce flows (and their priorities) to the SDN controller out of
// band (§4.2 optimization d).
func (sc *Sidecar) SetConnHook(f func(*transport.Conn, ConnClass)) { sc.connHook = f }

// --- inbound path ---

func (sc *Sidecar) handleInbound(ctx httpsim.Ctx, req *httpsim.Request, respond func(*httpsim.Response)) {
	m := sc.mesh
	m.sched.After(m.proxyDelay(), func() {
		if !sc.applyInboundRateLimit(respond) {
			return
		}
		src := req.Headers.Get(HeaderSource)
		if !sc.verifyPeer(req) || !m.cp.Authorized(src, sc.service) {
			m.metrics.Counter("mesh_requests_total",
				metrics.Labels{"service": sc.service, "direction": "inbound", "code": "403"}).Inc()
			resp := httpsim.NewResponse(httpsim.StatusForbidden)
			respond(resp)
			return
		}

		// Server span: adopt the caller's span as parent, then make
		// this span the parent of anything the app spawns.
		var span *trace.Span
		start := m.sched.Now()
		if tid := req.Headers.Get(trace.HeaderRequestID); tid != "" {
			span = &trace.Span{
				TraceID:  tid,
				SpanID:   m.tracer.NewSpanID(),
				ParentID: parseSpanID(req.Headers.Get(trace.HeaderSpanID)),
				Service:  sc.service,
				Name:     req.Method + " " + req.Path,
				Start:    start,
			}
			span.SetTag("direction", "server")
			if p := req.Headers.Get(HeaderPriority); p != "" {
				span.SetTag("priority", p)
			}
			req.Headers.Set(trace.HeaderSpanID, formatSpanID(span.SpanID))
		}

		for _, f := range sc.inboundFilters {
			f(ctx, req)
		}

		// Deadline propagation: remember this request's remaining
		// budget so outbound child calls can decrement or cancel.
		expiry := sc.recordInboundDeadline(req)

		respondFinal := func(resp *httpsim.Response) {
			m.sched.After(m.proxyDelay(), func() {
				if span != nil {
					span.End = m.sched.Now()
					span.SetTag("status", fmt.Sprint(resp.Status))
					m.tracer.Record(span)
				}
				m.metrics.ObserveDuration("mesh_request_duration",
					metrics.Labels{"service": sc.service, "direction": "inbound"},
					m.sched.Now()-start)
				respond(resp)
			})
		}

		app := sc.app
		if app == nil {
			m.metrics.Counter("mesh_requests_total",
				metrics.Labels{"service": sc.service, "direction": "inbound", "code": "ok"}).Inc()
			respond(httpsim.NewResponse(httpsim.StatusNotFound))
			return
		}

		ctl := sc.admissionFor(m.cp.AdmissionPolicyFor(sc.service))
		if ctl == nil {
			m.metrics.Counter("mesh_requests_total",
				metrics.Labels{"service": sc.service, "direction": "inbound", "code": "ok"}).Inc()
			app(req, respondFinal)
			return
		}

		// Admission enabled: route the dispatch through the bounded
		// priority queue + concurrency limiter. Exactly one of Run/Shed
		// fires, possibly later when a slot frees.
		cls := classOf(req)
		ctl.Offer(admission.Item{
			Class:    cls,
			Enqueued: m.sched.Now(),
			Expiry:   expiry,
			Run: func() {
				m.metrics.Counter("mesh_requests_total",
					metrics.Labels{"service": sc.service, "direction": "inbound", "code": "ok"}).Inc()
				sc.observeAdmission(ctl)
				dispatched := m.sched.Now()
				app(req, func(resp *httpsim.Response) {
					// Queue wait is excluded from the limiter's latency
					// sample: the limiter tracks service time, not its
					// own queueing.
					ctl.Done(m.sched.Now()-dispatched, resp.Status < 500)
					sc.observeAdmission(ctl)
					respondFinal(resp)
				})
			},
			Shed: func(why admission.Reason) {
				sc.shedInbound(cls, why, respondFinal)
			},
		})
	})
}

// --- outbound path ---

// call tracks one logical outbound request across attempts.
type call struct {
	sc       *Sidecar
	service  string
	req      *httpsim.Request
	cb       func(*httpsim.Response, error)
	span     *trace.Span
	retry    RetryPolicy
	breaker  CircuitBreakerPolicy
	attempts int
	done     bool
	start    time.Duration
	hedged   bool
}

// Call routes req to the service named by its "host" header through
// the mesh: route rules select a subset, the LB picks an endpoint,
// and the request goes out on a pooled connection of its class, with
// retries, hedging, and circuit breaking per control-plane policy.
// cb fires exactly once.
func (sc *Sidecar) Call(req *httpsim.Request, cb func(*httpsim.Response, error)) {
	m := sc.mesh
	service := req.Headers.Get(HeaderHost)
	if service == "" {
		cb(nil, ErrNoService)
		return
	}
	sc.stampIdentity(req)

	var span *trace.Span
	if tid := req.Headers.Get(trace.HeaderRequestID); tid != "" {
		span = &trace.Span{
			TraceID:  tid,
			SpanID:   m.tracer.NewSpanID(),
			ParentID: parseSpanID(req.Headers.Get(trace.HeaderSpanID)),
			Service:  sc.service,
			Name:     "call " + service + " " + req.Path,
			Start:    m.sched.Now(),
		}
		span.SetTag("direction", "client")
		span.SetTag("upstream", service)
		req.Headers.Set(trace.HeaderSpanID, formatSpanID(span.SpanID))
	}

	c := &call{
		sc:      sc,
		service: service,
		req:     req,
		cb:      cb,
		span:    span,
		retry:   m.cp.RetryPolicyFor(service),
		breaker: m.cp.CircuitBreakerFor(service),
		start:   m.sched.Now(),
	}

	m.sched.After(m.proxyDelay(), func() {
		for _, f := range sc.outboundFilters {
			f(req)
		}
		// End-to-end deadline: cancel the call when the calling
		// request's budget is already spent, otherwise forward the
		// decremented budget.
		if !sc.applyOutboundDeadline(c) {
			return
		}
		sc.maybeMirror(service, req)

		start := func() {
			c.launch()
			if h := m.cp.HedgePolicyFor(service); h.Delay > 0 {
				m.sched.After(h.Delay, func() {
					if !c.done && !c.hedged {
						c.hedged = true
						c.launch()
					}
				})
			}
		}
		// Fault injection (client-side, once per logical call).
		if f := m.cp.FaultPolicyFor(service); !f.IsZero() {
			if f.AbortProb > 0 && m.rng.Float64() < f.AbortProb {
				c.finish(httpsim.NewResponse(f.AbortStatus), nil)
				return
			}
			if f.DelayProb > 0 && m.rng.Float64() < f.DelayProb {
				m.sched.After(f.Delay, start)
				return
			}
		}
		start()
	})
}

// endpointsFor resolves the service and applies routing rules.
func (sc *Sidecar) endpointsFor(service string, req *httpsim.Request) ([]*cluster.Pod, error) {
	svc := sc.mesh.cluster.Service(service)
	if svc == nil {
		return nil, ErrNoService
	}
	subset := SubsetRef{}
	if rule := sc.mesh.cp.RouteRuleFor(service); rule != nil {
		subset = rule.DefaultSubset
		matched := false
		for _, hr := range rule.HeaderRoutes {
			if req.Headers.Get(hr.Header) == hr.Value {
				subset = hr.Subset
				matched = true
				break
			}
		}
		if !matched && len(rule.Weights) > 0 {
			subset = sc.pickWeighted(rule.Weights)
		}
	}
	var eps []*cluster.Pod
	if subset.IsZero() {
		eps = svc.Endpoints()
	} else {
		eps = svc.Subset(subset.Key, subset.Value)
	}
	if len(eps) == 0 {
		return nil, ErrNoEndpoints
	}
	return eps, nil
}

func (c *call) launch() {
	sc := c.sc
	m := sc.mesh
	c.attempts++

	eps, err := sc.endpointsFor(c.service, c.req)
	if err != nil {
		c.finish(nil, err)
		return
	}
	ep := sc.pickEndpoint(c.service, eps)
	st := sc.epState(ep.Addr())
	st.inflight++

	class := DefaultConnClass
	if sc.connClassifier != nil {
		class = sc.connClassifier(c.req)
	}
	client := sc.clientFor(ep, class)

	attemptStart := m.sched.Now()
	settled := false
	var timer *simnet.Timer
	settle := func(resp *httpsim.Response, err error) {
		if settled {
			return
		}
		settled = true
		if timer != nil {
			timer.Cancel()
		}
		st.inflight--
		lat := m.sched.Now() - attemptStart
		failed := err != nil || resp.Status >= 500
		st.observe(lat, failed, c.breaker, m.sched.Now())
		if c.done {
			return
		}
		if failed && c.shouldRetry(resp, err) {
			c.launch()
			return
		}
		c.finish(resp, err)
	}
	if c.retry.PerTryTimeout > 0 {
		timer = m.sched.After(c.retry.PerTryTimeout, func() {
			// A per-try timeout condemns the pooled connection, not
			// just the request: tear it down so the next attempt
			// re-dials instead of waiting out retransmission backoff
			// to a possibly-partitioned peer.
			settle(nil, ErrTimeout)
			client.Conn().Abort()
		})
	}
	client.Do(c.req.Clone(), func(resp *httpsim.Response, err error) { settle(resp, err) })
}

func (c *call) shouldRetry(resp *httpsim.Response, err error) bool {
	if c.attempts > c.retry.MaxRetries {
		return false
	}
	if err != nil {
		return true
	}
	return c.retry.RetryOn5xx && resp.Status >= 500
}

func (c *call) finish(resp *httpsim.Response, err error) {
	if c.done {
		return
	}
	c.done = true
	m := c.sc.mesh
	code := "error"
	if err == nil {
		code = fmt.Sprintf("%dxx", resp.Status/100)
	}
	m.metrics.Counter("mesh_requests_total",
		metrics.Labels{"service": c.service, "direction": "outbound", "code": code}).Inc()
	m.metrics.ObserveDuration("mesh_request_duration",
		metrics.Labels{"service": c.service, "direction": "outbound"},
		m.sched.Now()-c.start)
	if c.span != nil {
		c.span.End = m.sched.Now()
		c.span.SetTag("status", code)
		if c.attempts > 1 {
			c.span.SetTag("retries", fmt.Sprint(c.attempts-1))
		}
		m.tracer.Record(c.span)
	}
	c.cb(resp, err)
}

// clientFor returns (creating/replacing as needed) the pooled client
// for an endpoint and connection class.
func (sc *Sidecar) clientFor(ep *cluster.Pod, class ConnClass) *httpsim.Client {
	key := poolKey{addr: ep.Addr(), class: class.Name}
	cl, ok := sc.pools[key]
	if !ok || cl.Closed() {
		cl = httpsim.NewClient(sc.pod.Host(), ep.Addr(), InboundPort, class.Options)
		sc.pools[key] = cl
		if sc.connHook != nil {
			sc.connHook(cl.Conn(), class)
		}
	}
	return cl
}

// PoolSize returns the number of live pooled connections (tests).
func (sc *Sidecar) PoolSize() int { return len(sc.pools) }

// ForEachPool visits every pooled upstream connection with its class
// name and destination — introspection for tests and the meshbench
// reporting CLI.
func (sc *Sidecar) ForEachPool(fn func(class string, dst simnet.Addr, conn *transport.Conn)) {
	for key, cl := range sc.pools {
		fn(key.class, key.addr, cl.Conn())
	}
}

func parseSpanID(s string) uint64 {
	var id uint64
	fmt.Sscanf(s, "%x", &id)
	return id
}

func formatSpanID(id uint64) string { return fmt.Sprintf("%x", id) }
