package mesh

// This file is the mesh header registry: the single authoritative home
// of every header name the mesh stamps, reads, or strips. The meshvet
// headerreg analyzer enforces it — an `x-mesh-*` constant declared
// anywhere else, or a raw "x-mesh-..." literal anywhere at all, is a
// lint error, because a typo'd header silently never matches and that
// is exactly how a degraded response loses its provenance stamp.

// Well-known header names (beyond the trace package's).
const (
	// HeaderHost names the destination service of a request.
	HeaderHost = "host"
	// HeaderSource carries the caller's verified service identity —
	// the stand-in for the mTLS peer certificate.
	HeaderSource = "x-mesh-source"
	// HeaderPriority is the paper's custom priority header: the
	// classification assigned at ingress and carried with the request
	// through the whole call tree (§4.3 component 1-2).
	HeaderPriority = "x-mesh-priority"
	// HeaderHealth marks a request as an active health-check probe.
	// The destination sidecar answers probes itself (Envoy's health
	// check filter), so they test the pod's reachability and proxy
	// liveness without exercising — or being fooled by — the
	// application.
	HeaderHealth = "x-mesh-health"
	// HeaderDegraded marks a degraded (fallback) response and names the
	// service whose failure was papered over. Sidecars carry it back
	// through the call tree with the same provenance mechanism the
	// paper uses for priorities, so the edge can tell "served in full"
	// from "served degraded".
	HeaderDegraded = "x-mesh-degraded"
	// HeaderBudget carries the request's remaining end-to-end deadline
	// budget in integer microseconds. The gateway stamps the total;
	// each sidecar rewrites it on the outbound path net of its own
	// queueing and service time, and cancels child calls once it hits
	// zero.
	HeaderBudget = "x-mesh-budget"
	// HeaderShadow marks a mirrored (shadow) copy of a request so the
	// shadow target can tell mirrored traffic from real traffic.
	HeaderShadow = "x-mesh-shadow"
	// HeaderCert carries the presented certificate's serial — the wire
	// form of the mTLS handshake in this model.
	HeaderCert = "x-mesh-cert"
)

// Federation header names.
const (
	// HeaderEWService names the real destination service of a request
	// transiting the east-west gateway pair (the host header is the
	// next-hop gateway service on the egress->ingress leg).
	HeaderEWService = "x-mesh-ew-service"
	// HeaderEWRegion names the target region. A gateway receiving a
	// request for its own region is the ingress half; any other region
	// makes it the egress half, forwarding across the WAN.
	HeaderEWRegion = "x-mesh-ew-region"
	// HeaderLocalOnly restricts the failover ladder to the local region
	// for this request — stamped by the ingress gateway on the final leg
	// so a request cannot bounce between regions.
	HeaderLocalOnly = "x-mesh-local-only"
	// HeaderRegion is response provenance: the region whose ingress
	// gateway served a cross-region request, carried end-to-end so the
	// edge can tell where traffic actually landed during a failover.
	HeaderRegion = "x-mesh-region"
)

// Control-plane header names.
const (
	// HeaderCtrl marks a control-plane push request; its value is the
	// push id the receiving sidecar uses to fetch the decoded update.
	HeaderCtrl = "x-mesh-ctrl"
	// HeaderFed marks a control-plane-to-control-plane summary exchange
	// request (federated mode); its value is the message id.
	HeaderFed = "x-mesh-fed"
)
