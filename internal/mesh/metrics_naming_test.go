package mesh

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestMetricNamingConvention audits every metric family the mesh
// registers against the repo-wide naming convention:
//
//   - every family carries a subsystem prefix: mesh_, gateway_, or
//     ctrlplane_;
//   - counters end in _total;
//   - histograms end in _duration or _seconds;
//   - gauges are exempt from the suffix rule (they name a level, e.g.
//     mesh_admission_queue_depth, ctrlplane_version_lag).
//
// The scenario below exercises the data plane, the gateway, and the
// distributing control plane so all three subsystems register their
// families before the audit runs.
func TestMetricNamingConvention(t *testing.T) {
	tb := buildBed(t, Config{Seed: 1}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.EnableDistribution(DistributionConfig{Debounce: 20 * time.Millisecond})
	cp.SetHealthCheck("backend", HealthCheckPolicy{
		Interval: 200 * time.Millisecond, Timeout: 100 * time.Millisecond,
		UnhealthyThreshold: 2, HealthyThreshold: 1,
	})
	if got := serveOK(t, tb); got == "" {
		t.Fatalf("scenario request failed; metric families not populated")
	}
	tb.sched.RunFor(2 * time.Second)

	prefix := regexp.MustCompile(`^(mesh|gateway|ctrlplane)_`)
	fams := tb.m.Metrics().Families()
	if len(fams) == 0 {
		t.Fatal("no metric families registered")
	}
	seen := map[string]bool{}
	for _, f := range fams {
		m := prefix.FindString(f.Name)
		if m == "" {
			t.Errorf("family %q (%s) lacks a subsystem prefix (mesh_, gateway_, ctrlplane_)", f.Name, f.Kind)
			continue
		}
		seen[strings.TrimSuffix(m, "_")] = true
		switch f.Kind {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				t.Errorf("counter %q must end in _total", f.Name)
			}
		case "histogram":
			if !strings.HasSuffix(f.Name, "_duration") && !strings.HasSuffix(f.Name, "_seconds") {
				t.Errorf("histogram %q must end in _duration or _seconds", f.Name)
			}
		}
	}
	for _, want := range []string{"mesh", "gateway", "ctrlplane"} {
		if !seen[want] {
			t.Errorf("scenario registered no %s_* families; audit coverage regressed", want)
		}
	}
}
