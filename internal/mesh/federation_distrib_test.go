package mesh

import (
	"sort"
	"testing"
	"time"
)

// Tests for per-region control-plane distribution: regionally scoped
// endpoint snapshots, gateway-summarized remote capacity, split-brain
// staleness under WAN partition, and the config-sync readiness gate.

// epNames returns the sorted pod names a sidecar currently knows for
// service.
func epNames(sc *Sidecar, service string) []string {
	eps, _ := sc.discoverEndpoints(service)
	names := make([]string, 0, len(eps))
	for _, p := range eps {
		names = append(names, p.Name())
	}
	sort.Strings(names)
	return names
}

// remoteCounts returns a sidecar's snapshotted per-region capacity
// summaries for service.
func remoteCounts(sc *Sidecar, service string) map[string]int {
	st, _ := sc.ctrlState(service)
	if st == nil {
		return nil
	}
	out := map[string]int{}
	for _, r := range st.Remote {
		out[r.Region] = r.Count
	}
	return out
}

func equalNames(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestPerRegionDistributionScopesEndpoints(t *testing.T) {
	bed := buildFedBed(t, defaultFedZones)
	cp := bed.m.ControlPlane()
	cp.EnableDistribution(DistributionConfig{PerRegion: true, Debounce: 10 * time.Millisecond})

	if got := len(cp.Distributions()); got != 3 {
		t.Fatalf("Distributions() returned %d servers, want one per region", got)
	}
	if cp.Distribution() != nil {
		t.Fatal("Distribution() must be nil in per-region mode")
	}
	bed.sched.RunFor(time.Second)

	// The frontend's snapshot holds only its own region's backends; the
	// other regions appear as gateway capacity summaries, not addresses.
	if got := epNames(bed.fe, "backend"); !equalNames(got, []string{"backend-a1", "backend-a2"}) {
		t.Fatalf("region-a snapshot eps = %v, want the two region-a backends", got)
	}
	want := map[string]int{"region-b": 1, "region-c": 1}
	if got := remoteCounts(bed.fe, "backend"); len(got) != 2 || got["region-b"] != 1 || got["region-c"] != 1 {
		t.Fatalf("remote summaries = %v, want %v", got, want)
	}
	// East-west gateway services are static federation config: their
	// cross-region addresses stay in every regional snapshot.
	if got := epNames(bed.fe, EWGatewayService("region-b")); len(got) != 1 {
		t.Fatalf("east-west service eps = %v, want the remote gateway pod", got)
	}
}

func TestPerRegionLadderFailsOverViaSummaries(t *testing.T) {
	// With distribution on, the ladder's remote tiers are built from
	// summaries rather than live discovery: drain the caller's region
	// and traffic must still climb onto the WAN.
	bed := buildFedBed(t, defaultFedZones)
	cp := bed.m.ControlPlane()
	cp.EnableDistribution(DistributionConfig{PerRegion: true, Debounce: 10 * time.Millisecond})
	cp.SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityLadder})
	bed.cl.Pod("backend-a1").SetReady(false)
	bed.cl.Pod("backend-a2").SetReady(false)

	var failures int
	bed.fireN(t, 20, 300*time.Millisecond, 10*time.Millisecond, &failures)
	bed.sched.Run()
	if failures != 0 {
		t.Fatalf("%d requests failed during summary-driven failover", failures)
	}
	if got := bed.hits["backend-b"] + bed.hits["backend-c"]; got != 20 {
		t.Fatalf("hits = %v, want all 20 absorbed by remote regions", bed.hits)
	}
	if bed.m.Metrics().CounterTotal("gateway_eastwest_ingress_total") == 0 {
		t.Fatal("failover did not traverse the east-west gateways")
	}
}

func TestWANPartitionFreezesPeerSummaries(t *testing.T) {
	// Split-brain: while region-b's WAN links are down, its capacity
	// changes cannot reach region-a, whose sidecars keep routing on the
	// frozen (now wrong) summary. Healing the WAN reconverges.
	bed := buildFedBed(t, defaultFedZones)
	cp := bed.m.ControlPlane()
	cp.EnableDistribution(DistributionConfig{
		PerRegion:   true,
		Debounce:    10 * time.Millisecond,
		PushTimeout: 200 * time.Millisecond,
		ResyncDelay: 100 * time.Millisecond,
	})
	bed.sched.RunFor(500 * time.Millisecond)
	if got := remoteCounts(bed.fe, "backend"); got["region-b"] != 1 {
		t.Fatalf("pre-partition summaries = %v", got)
	}

	for _, peer := range []string{"region-a", "region-c"} {
		bed.cl.WANLink("region-b", peer).SetDown(true)
	}
	bed.cl.Pod("backend-b").SetReady(false)
	bed.sched.RunFor(2 * time.Second)
	// Honest staleness: region-a still believes region-b has capacity.
	if got := remoteCounts(bed.fe, "backend"); got["region-b"] != 1 {
		t.Fatalf("partitioned summaries = %v, want region-b frozen at 1", got)
	}

	for _, peer := range []string{"region-a", "region-c"} {
		bed.cl.WANLink("region-b", peer).SetDown(false)
	}
	bed.sched.RunFor(2 * time.Second)
	if got := remoteCounts(bed.fe, "backend"); got["region-b"] != 0 {
		t.Fatalf("post-heal summaries = %v, want region-b drained", got)
	}
}

func TestGateReadinessClosesStaleDialWindow(t *testing.T) {
	// The stale-dial window: a pod restarts and flips ready while its
	// sidecar still cannot reach the control plane, so peers route to a
	// pod acting on stale config. GateReadiness keeps the pod out of
	// routable endpoints until its sidecar acknowledges a current
	// snapshot; without the gate the window is observable.
	for _, gate := range []bool{false, true} {
		tb := buildBed(t, Config{Seed: 3}, echoBackend)
		cp := tb.m.ControlPlane()
		cp.EnableDistribution(DistributionConfig{
			Debounce:      5 * time.Millisecond,
			PushTimeout:   100 * time.Millisecond,
			ResyncDelay:   50 * time.Millisecond,
			GateReadiness: gate,
		})
		tb.sched.RunFor(500 * time.Millisecond)

		// Crash-restart backend-1: partitioned first (the crash), then
		// ready again before its network path is back — the deploy-storm
		// ordering where kubelet readiness races the xDS resync.
		b1 := tb.cl.Pod("backend-1")
		b1.Partition(true)
		b1.SetReady(false)
		tb.sched.RunFor(500 * time.Millisecond)
		if got := epNames(tb.fe, "backend"); !equalNames(got, []string{"backend-2"}) {
			t.Fatalf("gate=%v: eps after crash = %v, want backend-2 only", gate, got)
		}

		b1.SetReady(true)
		tb.sched.RunFor(300 * time.Millisecond)
		if cp.Distribution().Current("backend-1") {
			t.Fatalf("gate=%v: scenario broken, backend-1 resynced while partitioned", gate)
		}
		inWindow := equalNames(epNames(tb.fe, "backend"), []string{"backend-1", "backend-2"})
		if gate && inWindow {
			t.Fatal("gate on: desynced pod became routable — stale-dial window open")
		}
		if !gate && !inWindow {
			t.Fatal("gate off: expected the stale-dial window to be observable")
		}

		// Network back: the control plane resyncs the sidecar, the gate
		// lifts, and the pod becomes routable in both modes.
		b1.Partition(false)
		tb.sched.RunFor(2 * time.Second)
		if !cp.Distribution().Current("backend-1") {
			t.Fatalf("gate=%v: backend-1 never resynced after heal", gate)
		}
		if got := epNames(tb.fe, "backend"); !equalNames(got, []string{"backend-1", "backend-2"}) {
			t.Fatalf("gate=%v: eps after heal = %v, want both backends", gate, got)
		}
	}
}
