package mesh

import (
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/simnet"
)

// breakerPhase is the circuit breaker's position for one endpoint.
type breakerPhase int

const (
	breakerClosed breakerPhase = iota
	breakerOpen
	breakerHalfOpen
)

// endpointState is the sidecar's local view of one upstream endpoint:
// outstanding requests, a latency EWMA, circuit-breaker state, active
// health-check verdict, outlier-ejection state, and the request window
// the outlier sweeper judges.
type endpointState struct {
	inflight int
	ewma     float64 // nanoseconds; 0 = no sample yet

	// Circuit breaker (consecutive failures → open → half-open trial).
	fails     int
	phase     breakerPhase
	openUntil time.Duration
	trial     bool // a half-open trial request is in flight

	// Active health checking.
	unhealthy bool
	hcFails   int
	hcOKs     int

	// LB slow-start after a health recovery: the endpoint's traffic
	// share ramps linearly from 0 at warmSince to full at warmUntil.
	warmSince time.Duration
	warmUntil time.Duration

	// Outlier detection: ejection plus the current sweep window.
	ejectedUntil time.Duration
	winTotal     int
	winFail      int
}

// ewmaAlpha weights new latency samples (~last 10 responses dominate).
const ewmaAlpha = 0.2

// observe folds one completed attempt into the endpoint's state. trial
// marks the half-open probe request, whose outcome alone decides
// whether the breaker closes or re-opens.
func (s *endpointState) observe(lat time.Duration, failed, trial bool, cb CircuitBreakerPolicy, now time.Duration) {
	s.winTotal++
	if failed {
		s.winFail++
	}
	if trial {
		s.trial = false
		if failed {
			s.phase = breakerOpen
			s.openUntil = now + cb.OpenFor
		} else {
			s.phase = breakerClosed
			s.fails = 0
		}
	} else if s.phase == breakerClosed && failed {
		s.fails++
		if cb.ConsecutiveFailures > 0 && s.fails >= cb.ConsecutiveFailures {
			s.phase = breakerOpen
			s.openUntil = now + cb.OpenFor
			s.fails = 0
		}
	} else if s.phase == breakerClosed {
		s.fails = 0
	}
	// Stragglers finishing while the breaker is open/half-open don't
	// move it; only the trial request does.
	if !failed && lat > 0 {
		if s.ewma == 0 {
			s.ewma = float64(lat)
		} else {
			s.ewma = (1-ewmaAlpha)*s.ewma + ewmaAlpha*float64(lat)
		}
	}
}

// breakerAvailable reports whether the breaker admits a request now,
// transitioning open → half-open once OpenFor has elapsed. In
// half-open only a single trial request is admitted at a time.
func (s *endpointState) breakerAvailable(now time.Duration) bool {
	switch s.phase {
	case breakerOpen:
		if now < s.openUntil {
			return false
		}
		s.phase = breakerHalfOpen
		return !s.trial
	case breakerHalfOpen:
		return !s.trial
	default:
		return true
	}
}

// available reports whether the endpoint is in LB rotation: not marked
// unhealthy by active probes, not ejected by outlier detection, and
// admitted by the circuit breaker.
func (s *endpointState) available(now time.Duration) bool {
	return !s.unhealthy && now >= s.ejectedUntil && s.breakerAvailable(now)
}

// pickEndpoint applies the service's LB policy over eligible endpoints.
// Endpoints that are circuit-open, probe-unhealthy, or outlier-ejected
// are skipped — unless so few remain that panic routing (or the
// legacy all-open fail-open) re-admits everything.
func (sc *Sidecar) pickEndpoint(service string, eps []*cluster.Pod) *cluster.Pod {
	if len(eps) == 0 {
		return nil
	}
	// Locality first: narrow to one priority level (local zone or the
	// remote spillover level) before health filtering, so panic routing
	// and fail-open judge the level actually being load-balanced.
	eps = sc.localitySelect(service, eps)
	return sc.pickFrom(service, eps, false)
}

// pickFrom load-balances over one already-narrowed priority level.
// panicOpen is the ladder's per-tier fail-open (locality.go): health
// filtering, slow-start, and the outlier panic logic are skipped so
// traffic spreads across every host in the tier.
func (sc *Sidecar) pickFrom(service string, eps []*cluster.Pod, panicOpen bool) *cluster.Pod {
	now := sc.mesh.sched.Now()
	eligible := eps
	if !panicOpen {
		eligible = eps[:0:0]
		for _, ep := range eps {
			if sc.epState(ep.Addr()).available(now) {
				eligible = append(eligible, ep)
			}
		}
		// LB slow-start: a warming endpoint is admitted with probability
		// equal to its ramp fraction, so recovered hosts take load
		// gradually. Skipped when it would empty the eligible set.
		if len(eligible) > 1 {
			kept := eligible[:0:0]
			for _, ep := range eligible {
				st := sc.epState(ep.Addr())
				if now < st.warmUntil && st.warmUntil > st.warmSince {
					frac := float64(now-st.warmSince) / float64(st.warmUntil-st.warmSince)
					if sc.mesh.rng.Float64() >= frac {
						continue
					}
				}
				kept = append(kept, ep)
			}
			if len(kept) > 0 {
				eligible = kept
			}
		}
		if pf := sc.outlierFor(service).PanicThreshold; pf > 0 &&
			float64(len(eligible)) < pf*float64(len(eps)) {
			eligible = eps // panic routing: too few healthy hosts, use them all
		}
		if len(eligible) == 0 {
			eligible = eps // all breakers open: fail open rather than refuse
		}
	}
	switch sc.lbPolicyFor(service) {
	case LBRandom:
		return eligible[sc.mesh.rng.Intn(len(eligible))]
	case LBLeastRequest:
		return sc.pickLeast(eligible)
	case LBEWMA:
		return sc.pickEWMA(eligible)
	default:
		return sc.pickRR(service, eligible)
	}
}

func (sc *Sidecar) pickRR(service string, eps []*cluster.Pod) *cluster.Pod {
	i := sc.rrCounters[service]
	sc.rrCounters[service] = i + 1
	return eps[i%uint64(len(eps))]
}

// pickLeast implements least-request as power-of-two-choices (Envoy's
// algorithm): sample two distinct endpoints at random and take the one
// with fewer outstanding requests. Randomized sampling avoids the
// deterministic-tie-break pathology where an idle (because slow)
// replica at position zero absorbs every request.
func (sc *Sidecar) pickLeast(eps []*cluster.Pod) *cluster.Pod {
	if len(eps) == 1 {
		return eps[0]
	}
	i := sc.mesh.rng.Intn(len(eps))
	j := sc.mesh.rng.Intn(len(eps) - 1)
	if j >= i {
		j++
	}
	a, b := eps[i], eps[j]
	if sc.epState(b.Addr()).inflight < sc.epState(a.Addr()).inflight {
		return b
	}
	return a
}

// pickEWMA implements latency-aware adaptive replica selection: score
// each endpoint by its smoothed latency scaled by outstanding load and
// take the minimum (the C3/least-loaded-EWMA family, §3.4 ref [30]).
func (sc *Sidecar) pickEWMA(eps []*cluster.Pod) *cluster.Pod {
	best := eps[0]
	bestScore := sc.ewmaScore(best.Addr())
	for _, ep := range eps[1:] {
		if s := sc.ewmaScore(ep.Addr()); s < bestScore {
			best, bestScore = ep, s
		}
	}
	return best
}

func (sc *Sidecar) ewmaScore(addr simnet.Addr) float64 {
	st := sc.epState(addr)
	lat := st.ewma
	if lat == 0 {
		lat = float64(time.Millisecond) // optimistic prior for unprobed replicas
	}
	return lat * float64(st.inflight+1)
}

// pickWeighted draws a subset proportionally to the declared weights
// (traffic shifting / canary).
func (sc *Sidecar) pickWeighted(ws []WeightedSubset) SubsetRef {
	total := 0
	for _, w := range ws {
		total += w.Weight
	}
	n := sc.mesh.rng.Intn(total)
	for _, w := range ws {
		n -= w.Weight
		if n < 0 {
			return w.Subset
		}
	}
	return ws[len(ws)-1].Subset
}

func (sc *Sidecar) epState(addr simnet.Addr) *endpointState {
	st, ok := sc.endpoints[addr]
	if !ok {
		st = &endpointState{}
		sc.endpoints[addr] = st
	}
	return st
}

// regionPath returns the sidecar's health state for the WAN path to a
// remote region (the east-west gateway route). It shares the endpoint
// state machine — consecutive-failure breaker, half-open probes — but
// lives outside the per-address map: the active health checker and
// outlier sweeper never touch it, so a dark path recovers only through
// breaker trial requests, which is all a caller can honestly know
// about a region it cannot see into.
func (sc *Sidecar) regionPath(region string) *endpointState {
	st, ok := sc.regionPaths[region]
	if !ok {
		st = &endpointState{}
		sc.regionPaths[region] = st
	}
	return st
}
