package mesh

import (
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/simnet"
)

// endpointState is the sidecar's local view of one upstream endpoint:
// outstanding requests, a latency EWMA, and circuit-breaker state.
type endpointState struct {
	inflight  int
	ewma      float64 // nanoseconds; 0 = no sample yet
	fails     int
	openUntil time.Duration
}

// ewmaAlpha weights new latency samples (~last 10 responses dominate).
const ewmaAlpha = 0.2

func (s *endpointState) observe(lat time.Duration, failed bool, cb CircuitBreakerPolicy, now time.Duration) {
	if failed {
		s.fails++
		if cb.ConsecutiveFailures > 0 && s.fails >= cb.ConsecutiveFailures {
			s.openUntil = now + cb.OpenFor
			s.fails = 0
		}
		return
	}
	s.fails = 0
	if lat > 0 {
		if s.ewma == 0 {
			s.ewma = float64(lat)
		} else {
			s.ewma = (1-ewmaAlpha)*s.ewma + ewmaAlpha*float64(lat)
		}
	}
}

func (s *endpointState) open(now time.Duration) bool { return now < s.openUntil }

// pickEndpoint applies the service's LB policy over eligible endpoints.
// Circuit-open endpoints are skipped unless every endpoint is open.
func (sc *Sidecar) pickEndpoint(service string, eps []*cluster.Pod) *cluster.Pod {
	if len(eps) == 0 {
		return nil
	}
	now := sc.mesh.sched.Now()
	eligible := eps[:0:0]
	for _, ep := range eps {
		if !sc.epState(ep.Addr()).open(now) {
			eligible = append(eligible, ep)
		}
	}
	if len(eligible) == 0 {
		eligible = eps // all breakers open: fail open rather than refuse
	}
	switch sc.mesh.cp.LBPolicyFor(service) {
	case LBRandom:
		return eligible[sc.mesh.rng.Intn(len(eligible))]
	case LBLeastRequest:
		return sc.pickLeast(eligible)
	case LBEWMA:
		return sc.pickEWMA(eligible)
	default:
		return sc.pickRR(service, eligible)
	}
}

func (sc *Sidecar) pickRR(service string, eps []*cluster.Pod) *cluster.Pod {
	i := sc.rrCounters[service]
	sc.rrCounters[service] = i + 1
	return eps[i%uint64(len(eps))]
}

// pickLeast implements least-request as power-of-two-choices (Envoy's
// algorithm): sample two distinct endpoints at random and take the one
// with fewer outstanding requests. Randomized sampling avoids the
// deterministic-tie-break pathology where an idle (because slow)
// replica at position zero absorbs every request.
func (sc *Sidecar) pickLeast(eps []*cluster.Pod) *cluster.Pod {
	if len(eps) == 1 {
		return eps[0]
	}
	i := sc.mesh.rng.Intn(len(eps))
	j := sc.mesh.rng.Intn(len(eps) - 1)
	if j >= i {
		j++
	}
	a, b := eps[i], eps[j]
	if sc.epState(b.Addr()).inflight < sc.epState(a.Addr()).inflight {
		return b
	}
	return a
}

// pickEWMA implements latency-aware adaptive replica selection: score
// each endpoint by its smoothed latency scaled by outstanding load and
// take the minimum (the C3/least-loaded-EWMA family, §3.4 ref [30]).
func (sc *Sidecar) pickEWMA(eps []*cluster.Pod) *cluster.Pod {
	best := eps[0]
	bestScore := sc.ewmaScore(best.Addr())
	for _, ep := range eps[1:] {
		if s := sc.ewmaScore(ep.Addr()); s < bestScore {
			best, bestScore = ep, s
		}
	}
	return best
}

func (sc *Sidecar) ewmaScore(addr simnet.Addr) float64 {
	st := sc.epState(addr)
	lat := st.ewma
	if lat == 0 {
		lat = float64(time.Millisecond) // optimistic prior for unprobed replicas
	}
	return lat * float64(st.inflight+1)
}

// pickWeighted draws a subset proportionally to the declared weights
// (traffic shifting / canary).
func (sc *Sidecar) pickWeighted(ws []WeightedSubset) SubsetRef {
	total := 0
	for _, w := range ws {
		total += w.Weight
	}
	n := sc.mesh.rng.Intn(total)
	for _, w := range ws {
		n -= w.Weight
		if n < 0 {
			return w.Subset
		}
	}
	return ws[len(ws)-1].Subset
}

func (sc *Sidecar) epState(addr simnet.Addr) *endpointState {
	st, ok := sc.endpoints[addr]
	if !ok {
		st = &endpointState{}
		sc.endpoints[addr] = st
	}
	return st
}
