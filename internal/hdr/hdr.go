// Package hdr implements a high-dynamic-range histogram for latency
// recording, in the spirit of HdrHistogram: log-scaled buckets with
// linear sub-buckets give a bounded relative error (~3%) across the
// full range of int64 values, with O(1) recording.
//
// The workload generator records every request's latency here, so
// percentile queries (p50/p99) over millions of samples are exact up to
// bucket resolution with no reservoir sampling bias — the property that
// makes wrk2-style tail-latency reporting trustworthy.
package hdr

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// subBits sets sub-bucket resolution: 2^subBits linear sub-buckets per
// octave, bounding relative error at 2^-subBits (~1.6%).
const subBits = 6

const subCount = 1 << subBits

// maxBuckets covers int64's full positive range.
const maxBuckets = 64 - subBits + 1

// Histogram records non-negative int64 values. The zero value is ready
// to use.
type Histogram struct {
	counts [maxBuckets][subCount]uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// Record adds a value. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	b, s := bucketOf(v)
	h.counts[b][s]++
	h.total++
	h.sum += v
	if h.total == 1 {
		h.min, h.max = v, v
		return
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds a duration in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

func bucketOf(v int64) (bucket, sub int) {
	if v < subCount {
		return 0, int(v)
	}
	b := bits.Len64(uint64(v)) - subBits
	return b, int(v >> uint(b)) // in [subCount/2, subCount)
}

// valueOf reconstructs a representative (midpoint) value for a bucket.
func valueOf(bucket, sub int) int64 {
	if bucket == 0 {
		return int64(sub)
	}
	base := int64(sub) << uint(bucket)
	return base + (1 << uint(bucket-1)) // midpoint of the bucket span
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Quantile returns the value at quantile q in [0, 1]; q outside the
// range is clamped. Empty histograms return 0. The answer is exact up
// to bucket resolution, and exact at the extremes (true min/max).
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for b := 0; b < maxBuckets; b++ {
		for s := 0; s < subCount; s++ {
			c := h.counts[b][s]
			if c == 0 {
				continue
			}
			seen += c
			if seen > rank {
				v := valueOf(b, s)
				if v < h.min {
					v = h.min
				}
				if v > h.max {
					v = h.max
				}
				return v
			}
		}
	}
	return h.max
}

// QuantileDuration returns Quantile as a time.Duration.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Merge adds other's samples into h. Min/max/sum merge exactly.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for b := 0; b < maxBuckets; b++ {
		for s := 0; s < subCount; s++ {
			h.counts[b][s] += other.counts[b][s]
		}
	}
	if h.total == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset clears all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary renders count/mean and standard percentiles as durations —
// the wrk2-style report line.
func (h *Histogram) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%v", h.total, time.Duration(h.Mean()))
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		fmt.Fprintf(&b, " p%g=%v", q*100, h.QuantileDuration(q))
	}
	fmt.Fprintf(&b, " max=%v", time.Duration(h.Max()))
	return b.String()
}
