package hdr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestSingleValue(t *testing.T) {
	h := New()
	h.Record(12345)
	if h.Count() != 1 || h.Min() != 12345 || h.Max() != 12345 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 12345 {
			t.Fatalf("q%v = %d, want 12345", q, got)
		}
	}
}

func TestExactSmallValues(t *testing.T) {
	// Values < 64 are recorded exactly.
	h := New()
	for i := int64(0); i < 64; i++ {
		h.Record(i)
	}
	if got := h.Quantile(0.5); got < 31 || got > 33 {
		t.Fatalf("p50 = %d, want ~32", got)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
}

func TestRelativeErrorBound(t *testing.T) {
	// Any recorded value's bucket midpoint must be within ~3.2%.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(int64(10 * time.Second))
		b, s := bucketOf(v)
		rep := valueOf(b, s)
		diff := float64(rep-v) / float64(v+1)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.032 {
			t.Fatalf("value %d represented as %d (err %.3f)", v, rep, diff)
		}
	}
}

func TestQuantilesAgainstSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New()
	var vals []int64
	for i := 0; i < 50000; i++ {
		// Log-normal-ish latency distribution.
		v := int64(1e6 * (1 + rng.ExpFloat64()*5))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.05 {
			t.Fatalf("q%v: got %d, exact %d (err %.3f)", q, got, exact, rel)
		}
	}
}

func TestMergePreservesTotals(t *testing.T) {
	a, b := New(), New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a.Record(rng.Int63n(1e9))
		b.Record(rng.Int63n(1e6))
	}
	sum := a.Sum() + b.Sum()
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Sum() != sum {
		t.Fatalf("merged sum = %d, want %d", a.Sum(), sum)
	}
	a.Merge(nil) // must not panic
	empty := New()
	empty.Merge(a)
	if empty.Count() != 2000 || empty.Min() != a.Min() || empty.Max() != a.Max() {
		t.Fatal("merge into empty lost state")
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestNegativeClamped(t *testing.T) {
	h := New()
	h.Record(-100)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative not clamped to zero")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	// Property: quantiles are non-decreasing in q.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New()
		n := 100 + rng.Intn(1000)
		for i := 0; i < n; i++ {
			h.Record(rng.Int63n(1e12))
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinMinMax(t *testing.T) {
	// Property: any quantile lies within [Min, Max].
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := New()
		for _, v := range vals {
			h.Record(int64(v))
		}
		for _, q := range []float64{-1, 0, 0.25, 0.5, 0.75, 0.99, 1, 2} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMatchesCombinedRecording(t *testing.T) {
	// Property: recording into two histograms and merging gives the
	// same quantiles as recording everything into one.
	f := func(xs, ys []uint16) bool {
		a, b, c := New(), New(), New()
		for _, x := range xs {
			a.Record(int64(x))
			c.Record(int64(x))
		}
		for _, y := range ys {
			b.Record(int64(y))
			c.Record(int64(y))
		}
		a.Merge(b)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			if a.Quantile(q) != c.Quantile(q) {
				return false
			}
		}
		return a.Count() == c.Count() && a.Sum() == c.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	h := New()
	h.RecordDuration(5 * time.Millisecond)
	s := h.Summary()
	if s == "" || len(s) < 20 {
		t.Fatalf("summary too short: %q", s)
	}
}
