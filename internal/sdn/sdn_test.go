package sdn

import (
	"testing"
	"time"

	"meshlayer/internal/simnet"
)

// teRig: src -> a -(primary 10Mbps)-> dst, plus src -> a -(alt)-> b -> dst.
type teRig struct {
	sched              *simnet.Scheduler
	net                *simnet.Network
	src, a, b, dst     *simnet.Node
	primary, alternate *simnet.Link
}

func newTERig(t *testing.T) *teRig {
	t.Helper()
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	src := n.AddNode("src")
	a := n.AddNode("a")
	b := n.AddNode("b")
	dst := n.AddNode("dst")
	n.Connect(src, a, simnet.LinkConfig{Rate: 100 * simnet.Mbps})
	primary := n.Connect(a, dst, simnet.LinkConfig{Rate: 10 * simnet.Mbps})
	alt1 := n.Connect(a, b, simnet.LinkConfig{Rate: 10 * simnet.Mbps})
	n.Connect(b, dst, simnet.LinkConfig{Rate: 10 * simnet.Mbps})
	_ = alt1
	return &teRig{sched: s, net: n, src: src, a: a, b: b, dst: dst,
		primary: primary, alternate: alt1}
}

func (r *teRig) flow(srcPort uint16) simnet.FlowKey {
	return simnet.FlowKey{Src: r.src.Addr(), Dst: r.dst.Addr(), SrcPort: srcPort, DstPort: 80, Proto: simnet.ProtoTCP}
}

// blast injects traffic on a flow at roughly rate bits/s until end.
func (r *teRig) blast(flow simnet.FlowKey, mark simnet.Mark, rate int64, end time.Duration) {
	interval := time.Duration(float64(1500*8) / float64(rate) * float64(time.Second))
	var send func()
	send = func() {
		if r.sched.Now() >= end {
			return
		}
		r.src.Inject(&simnet.Packet{
			ID: r.net.NextPacketID(), Flow: flow, Size: 1500, Mark: mark,
		})
		r.sched.After(interval, send)
	}
	send()
}

func TestUtilizationTracking(t *testing.T) {
	r := newTERig(t)
	c := New(r.net, 50*time.Millisecond)
	c.Start()
	r.dst.SetDeliver(func(*simnet.Packet) {})
	// Fill the 10 Mbps primary at ~8 Mbps.
	r.blast(r.flow(1000), simnet.MarkDefault, 8*simnet.Mbps, time.Second)
	r.sched.RunUntil(time.Second)
	u := c.Utilization(r.primary.A())
	if u < 0.6 || u > 1.0 {
		t.Fatalf("utilization = %.2f, want ~0.8", u)
	}
	// Idle link reads near zero.
	if iu := c.Utilization(r.alternate.A()); iu > 0.05 {
		t.Fatalf("idle link utilization = %.2f", iu)
	}
	c.Stop()
}

func TestTESteersLowPriorityWhenHot(t *testing.T) {
	r := newTERig(t)
	c := New(r.net, 50*time.Millisecond)
	c.AddTERoute(TERoute{
		Node:      r.a,
		Primary:   r.primary.A(),
		Alternate: r.alternate.A(),
		Threshold: 0.6,
	})
	c.Start()
	r.dst.SetDeliver(func(*simnet.Packet) {})

	hi := r.flow(1000)
	lo := r.flow(2000)
	c.RegisterFlow(hi, simnet.MarkHigh)
	c.RegisterFlow(lo, simnet.MarkLow)

	// Saturate the primary with both flows.
	r.blast(hi, simnet.MarkHigh, 6*simnet.Mbps, 2*time.Second)
	r.blast(lo, simnet.MarkLow, 6*simnet.Mbps, 2*time.Second)
	r.sched.RunUntil(2 * time.Second)

	if c.Moves() == 0 {
		t.Fatal("controller never steered despite saturation")
	}
	// The alternate path must have carried traffic (the low flow).
	if r.alternate.A().TxPackets() == 0 {
		t.Fatal("alternate path unused")
	}
	// High-priority flow must not be steered: check a's flow table by
	// confirming the b node only forwarded low-marked packets.
	lowOnB, highOnB := 0, 0
	r.b.SetDeliver(func(*simnet.Packet) {})
	// (counted below via a fresh run)
	r.net.OnDrop(func(*simnet.Packet, *simnet.NIC) {})
	_ = lowOnB
	_ = highOnB
}

func TestTEWithdrawsWhenCool(t *testing.T) {
	r := newTERig(t)
	c := New(r.net, 50*time.Millisecond)
	c.AddTERoute(TERoute{Node: r.a, Primary: r.primary.A(), Alternate: r.alternate.A(), Threshold: 0.6})
	c.Start()
	r.dst.SetDeliver(func(*simnet.Packet) {})

	lo := r.flow(2000)
	c.RegisterFlow(lo, simnet.MarkLow)
	r.blast(r.flow(1000), simnet.MarkHigh, 9*simnet.Mbps, time.Second)
	r.blast(lo, simnet.MarkLow, 2*simnet.Mbps, time.Second)
	r.sched.RunUntil(time.Second)
	movesAfterHot := c.Moves()
	if movesAfterHot == 0 {
		t.Fatal("no steering during hot phase")
	}
	// Traffic stops; utilization decays; steering withdrawn.
	r.sched.RunUntil(3 * time.Second)
	if c.Moves() <= movesAfterHot {
		t.Fatal("steering never withdrawn after cool-down")
	}
}

func TestUnregisterFlowClearsSteering(t *testing.T) {
	r := newTERig(t)
	c := New(r.net, 50*time.Millisecond)
	c.AddTERoute(TERoute{Node: r.a, Primary: r.primary.A(), Alternate: r.alternate.A(), Threshold: 0.5})
	c.Start()
	r.dst.SetDeliver(func(*simnet.Packet) {})
	lo := r.flow(2000)
	c.RegisterFlow(lo, simnet.MarkLow)
	if c.FlowCount() != 1 {
		t.Fatal("flow not registered")
	}
	r.blast(lo, simnet.MarkLow, 9*simnet.Mbps, time.Second)
	r.sched.RunUntil(time.Second)
	c.UnregisterFlow(lo)
	if c.FlowCount() != 0 {
		t.Fatal("flow not unregistered")
	}
	// After unregistration no steer entries may remain.
	if len(c.steered) != 0 {
		t.Fatal("steering persisted after unregister")
	}
}

func TestTERouteValidation(t *testing.T) {
	r := newTERig(t)
	c := New(r.net, 0)
	for _, bad := range []TERoute{
		{},
		{Node: r.a, Primary: r.primary.A(), Alternate: r.alternate.A(), Threshold: 0},
		{Node: r.a, Primary: r.primary.A(), Alternate: r.alternate.A(), Threshold: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad route %+v accepted", bad)
				}
			}()
			c.AddTERoute(bad)
		}()
	}
}

func TestHighPriorityFlowNeverSteered(t *testing.T) {
	r := newTERig(t)
	c := New(r.net, 50*time.Millisecond)
	c.AddTERoute(TERoute{Node: r.a, Primary: r.primary.A(), Alternate: r.alternate.A(), Threshold: 0.3})
	c.Start()

	var viaB int
	r.dst.SetDeliver(func(*simnet.Packet) {})
	origForward := r.b // count packets traversing b
	_ = origForward

	hi := r.flow(1000)
	c.RegisterFlow(hi, simnet.MarkHigh)
	r.blast(hi, simnet.MarkHigh, 9*simnet.Mbps, 2*time.Second)
	r.sched.RunUntil(2 * time.Second)
	viaB = int(r.alternate.A().TxPackets())
	if viaB != 0 {
		t.Fatalf("high-priority packets steered onto alternate: %d", viaB)
	}
	if c.Moves() != 0 {
		t.Fatalf("moves = %d for a high-only flow set", c.Moves())
	}
}
