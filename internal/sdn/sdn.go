// Package sdn models a physical-network SDN controller: it polls link
// utilization, accepts flow-priority hints from the service mesh
// (the out-of-band API of the paper's optimization 3d), and performs
// priority-aware traffic engineering by steering low-priority flows
// onto alternate paths when primary links run hot.
//
// This is the "coordination with lower layers" opportunity of §3.5:
// the mesh knows request priorities; the SDN controller knows link
// state; the interface between them is deliberately narrow (register a
// flow's priority, observe utilization).
package sdn

import (
	"sort"
	"time"

	"meshlayer/internal/simnet"
)

// Controller is the SDN control plane for the simulated network.
type Controller struct {
	net      *simnet.Network
	sched    *simnet.Scheduler
	interval time.Duration

	prevTx map[*simnet.NIC]uint64
	util   map[*simnet.NIC]float64

	flows    map[simnet.FlowKey]simnet.Mark
	teRoutes []TERoute
	steered  map[steerKey]bool

	running bool
	samples uint64
	moves   uint64
}

type steerKey struct {
	node *simnet.Node
	flow simnet.FlowKey
}

// DefaultInterval is the utilization sampling period.
const DefaultInterval = 100 * time.Millisecond

// utilAlpha smooths utilization samples.
const utilAlpha = 0.5

// New builds a controller for the network. interval <= 0 selects
// DefaultInterval.
func New(net *simnet.Network, interval time.Duration) *Controller {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Controller{
		net:      net,
		sched:    net.Scheduler(),
		interval: interval,
		prevTx:   make(map[*simnet.NIC]uint64),
		util:     make(map[*simnet.NIC]float64),
		flows:    make(map[simnet.FlowKey]simnet.Mark),
		steered:  make(map[steerKey]bool),
	}
}

// TERoute declares an alternate path for low-priority traffic: when
// the Primary egress NIC at Node exceeds Threshold utilization,
// registered low-priority flows routed through Primary are pinned to
// Alternate; they move back when utilization subsides.
type TERoute struct {
	Node      *simnet.Node
	Primary   *simnet.NIC
	Alternate *simnet.NIC
	Threshold float64
}

// AddTERoute registers a traffic-engineering rule.
func (c *Controller) AddTERoute(r TERoute) {
	if r.Node == nil || r.Primary == nil || r.Alternate == nil {
		panic("sdn: TERoute needs node, primary, and alternate")
	}
	if r.Threshold <= 0 || r.Threshold >= 1 {
		panic("sdn: TERoute threshold must be in (0,1)")
	}
	c.teRoutes = append(c.teRoutes, r)
}

// RegisterFlow is the mesh-facing API: the sidecar layer announces a
// flow's priority out of band (§4.2: "an API call into the SDN
// controller"). Marks at or below simnet.MarkLow are eligible for
// rerouting.
func (c *Controller) RegisterFlow(flow simnet.FlowKey, mark simnet.Mark) {
	c.flows[flow] = mark
}

// UnregisterFlow removes a flow (connection closed). Any steering for
// it is withdrawn.
func (c *Controller) UnregisterFlow(flow simnet.FlowKey) {
	delete(c.flows, flow)
	for k := range c.steered {
		if k.flow == flow {
			k.node.SetFlowRoute(flow, nil)
			delete(c.steered, k)
		}
	}
}

// FlowCount returns the number of registered flows.
func (c *Controller) FlowCount() int { return len(c.flows) }

// Moves returns how many steering changes the controller has made.
func (c *Controller) Moves() uint64 { return c.moves }

// Utilization returns the smoothed utilization of a NIC's egress in
// [0, 1] (0 before the first two samples).
func (c *Controller) Utilization(nic *simnet.NIC) float64 { return c.util[nic] }

// Start begins periodic sampling and TE evaluation.
func (c *Controller) Start() {
	if c.running {
		return
	}
	c.running = true
	c.tick()
}

// Stop halts sampling after the current period.
func (c *Controller) Stop() { c.running = false }

func (c *Controller) tick() {
	if !c.running {
		return
	}
	c.sample()
	c.evaluateTE()
	c.sched.After(c.interval, c.tick)
}

func (c *Controller) sample() {
	c.samples++
	for _, l := range c.net.Links() {
		for _, nic := range []*simnet.NIC{l.A(), l.B()} {
			tx := nic.TxBytes()
			delta := tx - c.prevTx[nic]
			c.prevTx[nic] = tx
			capacity := float64(l.Config().Rate) / 8 * c.interval.Seconds()
			u := float64(delta) / capacity
			if u > 1 {
				u = 1
			}
			c.util[nic] = (1-utilAlpha)*c.util[nic] + utilAlpha*u
		}
	}
}

func (c *Controller) evaluateTE() {
	for _, r := range c.teRoutes {
		hot := c.util[r.Primary] > r.Threshold
		for _, flow := range c.sortedLowFlows() {
			key := steerKey{node: r.Node, flow: flow}
			switch {
			case hot && !c.steered[key]:
				r.Node.SetFlowRoute(flow, r.Alternate)
				c.steered[key] = true
				c.moves++
			case !hot && c.steered[key]:
				r.Node.SetFlowRoute(flow, nil)
				delete(c.steered, key)
				c.moves++
			}
		}
	}
}

// sortedLowFlows returns rerouting-eligible flows in a deterministic
// order (map iteration order must not leak into the simulation).
func (c *Controller) sortedLowFlows() []simnet.FlowKey {
	var out []simnet.FlowKey
	for f, m := range c.flows {
		if m <= simnet.MarkLow {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		return a.DstPort < b.DstPort
	})
	return out
}
