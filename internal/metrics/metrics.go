// Package metrics is a lightweight labeled-metrics registry used by the
// mesh's telemetry: counters, gauges, and latency histograms, queryable
// by name and label set. It is the stand-in for the metric-collection
// role of a service mesh control plane (Istio's telemetry pipeline).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"meshlayer/internal/hdr"
)

// Labels is an immutable-by-convention label set attached to a metric
// series.
type Labels map[string]string

// key renders labels canonically for map indexing.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	ks := make([]string, 0, len(l))
	for k := range l {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// String renders labels in {k=v,...} form.
func (l Labels) String() string { return "{" + l.key() + "}" }

// Counter is a monotonically increasing value, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, safe for concurrent use
// (the float64 is stored as its IEEE-754 bits in a uint64).
type Gauge struct {
	bits atomic.Uint64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds named metric families. Series lookup, counters, and
// gauges are safe for concurrent use (the maps are mutex-guarded, the
// values atomic). Histograms are the exception: the underlying hdr
// buckets are not synchronized, so recording into the same histogram
// series must stay single-goroutine — the deterministic simulator's
// standing invariant.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]map[string]*Counter
	gauges     map[string]map[string]*Gauge
	histograms map[string]map[string]*hdr.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]map[string]*Counter),
		gauges:     make(map[string]map[string]*Gauge),
		histograms: make(map[string]map[string]*hdr.Histogram),
	}
}

// Counter returns (creating if needed) the counter name+labels.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.counters[name]
	if fam == nil {
		fam = make(map[string]*Counter)
		r.counters[name] = fam
	}
	k := labels.key()
	c := fam[k]
	if c == nil {
		c = &Counter{}
		fam[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.gauges[name]
	if fam == nil {
		fam = make(map[string]*Gauge)
		r.gauges[name] = fam
	}
	k := labels.key()
	g := fam[k]
	if g == nil {
		g = &Gauge{}
		fam[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram name+labels.
func (r *Registry) Histogram(name string, labels Labels) *hdr.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.histograms[name]
	if fam == nil {
		fam = make(map[string]*hdr.Histogram)
		r.histograms[name] = fam
	}
	k := labels.key()
	h := fam[k]
	if h == nil {
		h = hdr.New()
		fam[k] = h
	}
	return h
}

// Family identifies one registered metric family: a name plus the kind
// of series it holds.
type Family struct {
	Name string
	Kind string // "counter", "gauge", or "histogram"
}

// Families lists every registered family sorted by name then kind —
// the hook the naming-convention audit tests against. A name used as
// two kinds (it should not be) yields two entries.
func (r *Registry) Families() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	var fams []Family
	for name := range r.counters {
		fams = append(fams, Family{Name: name, Kind: "counter"})
	}
	for name := range r.gauges {
		fams = append(fams, Family{Name: name, Kind: "gauge"})
	}
	for name := range r.histograms {
		fams = append(fams, Family{Name: name, Kind: "histogram"})
	}
	sort.Slice(fams, func(i, j int) bool {
		if fams[i].Name != fams[j].Name {
			return fams[i].Name < fams[j].Name
		}
		return fams[i].Kind < fams[j].Kind
	})
	return fams
}

// CounterTotal sums a counter family across all label sets.
func (r *Registry) CounterTotal(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for _, c := range r.counters[name] {
		total += c.Value()
	}
	return total
}

// ObserveDuration records d into the named histogram.
func (r *Registry) ObserveDuration(name string, labels Labels, d time.Duration) {
	r.Histogram(name, labels).RecordDuration(d)
}

// Dump renders every series, sorted, for logs and debugging.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, fam := range r.counters {
		for k, c := range fam {
			lines = append(lines, fmt.Sprintf("counter %s{%s} %d", name, k, c.Value()))
		}
	}
	for name, fam := range r.gauges {
		for k, g := range fam {
			lines = append(lines, fmt.Sprintf("gauge %s{%s} %g", name, k, g.Value()))
		}
	}
	for name, fam := range r.histograms {
		for k, h := range fam {
			lines = append(lines, fmt.Sprintf("histogram %s{%s} %s", name, k, h.Summary()))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
