package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("req", Labels{"svc": "x"})
	b := r.Counter("req", Labels{"svc": "x"})
	if a != b {
		t.Fatal("same name+labels returned different counters")
	}
	c := r.Counter("req", Labels{"svc": "y"})
	if a == c {
		t.Fatal("different labels shared a counter")
	}
	a.Inc()
	a.Add(4)
	if a.Value() != 5 {
		t.Fatalf("value = %d", a.Value())
	}
	if r.CounterTotal("req") != 5 {
		t.Fatalf("total = %d", r.CounterTotal("req"))
	}
	c.Add(10)
	if r.CounterTotal("req") != 15 {
		t.Fatalf("total = %d", r.CounterTotal("req"))
	}
}

func TestLabelsKeyOrderIndependent(t *testing.T) {
	a := Labels{"a": "1", "b": "2"}
	b := Labels{"b": "2", "a": "1"}
	if a.key() != b.key() {
		t.Fatal("label key depends on declaration order")
	}
	var empty Labels
	if empty.key() != "" {
		t.Fatal("empty labels key not empty")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", nil)
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g", g.Value())
	}
}

// Exercised under -race in CI: counters and gauges must tolerate
// concurrent writers (histograms deliberately excluded — see the
// Registry doc comment).
func TestConcurrentCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Counter("hits", Labels{"svc": "a"}).Inc()
				r.Gauge("depth", Labels{"svc": "a"}).Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits", Labels{"svc": "a"}).Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Gauge("depth", Labels{"svc": "a"}).Value(); got != goroutines*per {
		t.Fatalf("gauge = %g, want %d", got, goroutines*per)
	}
}

func TestHistogramAndDump(t *testing.T) {
	r := NewRegistry()
	r.ObserveDuration("latency", Labels{"svc": "a"}, 5*time.Millisecond)
	r.ObserveDuration("latency", Labels{"svc": "a"}, 10*time.Millisecond)
	h := r.Histogram("latency", Labels{"svc": "a"})
	if h.Count() != 2 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	r.Counter("hits", nil).Inc()
	d := r.Dump()
	if !strings.Contains(d, "counter hits{} 1") {
		t.Fatalf("dump missing counter: %s", d)
	}
	if !strings.Contains(d, "histogram latency{svc=a}") {
		t.Fatalf("dump missing histogram: %s", d)
	}
}

func TestFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", Labels{"svc": "a"}).Inc()
	r.Counter("b_total", Labels{"svc": "b"}).Inc() // same family: one entry
	r.Gauge("a_depth", nil).Set(1)
	r.ObserveDuration("c_duration", nil, time.Millisecond)
	got := r.Families()
	want := []Family{
		{Name: "a_depth", Kind: "gauge"},
		{Name: "b_total", Kind: "counter"},
		{Name: "c_duration", Kind: "histogram"},
	}
	if len(got) != len(want) {
		t.Fatalf("Families() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Families()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
