package core

import (
	"testing"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/sdn"
	"meshlayer/internal/simnet"
	"meshlayer/internal/tc"
	"meshlayer/internal/transport"
	"meshlayer/internal/workload"
)

// enableAll installs the full cross-layer controller on an e-library.
func enableAll(e *app.ELibrary) *Controller {
	return Enable(Config{
		Mesh:            e.Mesh,
		EnableRouting:   true,
		EnableScavenger: true,
		EnableTC:        true,
		PriorityPools: map[string]PoolPair{
			"reviews": {
				High: mesh.SubsetRef{Key: "version", Value: "v1"},
				Low:  mesh.SubsetRef{Key: "version", Value: "v2"},
			},
		},
	})
}

func TestConfigValidation(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	for name, bad := range map[string]Config{
		"nil mesh":      {},
		"bad scavenger": {Mesh: e.Mesh, ScavengerCC: "reno"},
		"bad share":     {Mesh: e.Mesh, HighShare: 1.5},
		"sdn no ctrl":   {Mesh: e.Mesh, EnableSDN: true},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", name)
				}
			}()
			Enable(bad)
		}()
	}
}

func TestProvenancePropagation(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	e.Gateway.SetClassifier(app.Classifier())
	c := enableAll(e)

	e.Gateway.Serve(app.NewProductRequest(), func(*httpsim.Response, error) {})
	e.Sched.Run()

	st := c.Stats()
	if st.Recorded == 0 {
		t.Fatal("no provenance recorded")
	}
	// The reviews app drops the priority header before calling ratings;
	// the sidecar must restore it from provenance (§4.3 (2)).
	if st.Stamped == 0 {
		t.Fatal("priority never stamped onto a child request")
	}
	// Note: ProvenanceEntries is 0 here — draining the scheduler also
	// runs the GC sweeps past the TTL. Entry lifetime is covered by
	// TestProvenanceGC.
}

func TestRoutingPinsPriorityPools(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	e.Gateway.SetClassifier(app.Classifier())
	enableAll(e)

	for i := 0; i < 6; i++ {
		e.Gateway.Serve(app.NewProductRequest(), func(*httpsim.Response, error) {})
		e.Gateway.Serve(app.NewAnalyticsRequest(), func(*httpsim.Response, error) {})
		e.Sched.RunFor(300 * time.Millisecond)
	}
	e.Sched.Run()

	// reviews-1 = high pool (LS only); reviews-2 = low pool (LI only).
	r1 := e.Reviews[0].Workers().Executed()
	r2 := e.Reviews[1].Workers().Executed()
	if r1 != 6 || r2 != 6 {
		t.Fatalf("pool executions r1=%d r2=%d, want 6/6", r1, r2)
	}
}

func TestTCInstalled(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	c := enableAll(e)
	wantQdiscs := len(e.Cluster.Pods()) * 2
	if c.Stats().QdiscsInstalled != wantQdiscs {
		t.Fatalf("qdiscs = %d, want %d", c.Stats().QdiscsInstalled, wantQdiscs)
	}
	if _, ok := e.Ratings.NIC().Qdisc().(*tc.Prio); !ok {
		t.Fatalf("ratings NIC qdisc is %T, want *tc.Prio", e.Ratings.NIC().Qdisc())
	}
}

func TestMarksReachBottleneckQdisc(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	e.Gateway.SetClassifier(app.Classifier())
	enableAll(e)

	for i := 0; i < 4; i++ {
		e.Gateway.Serve(app.NewProductRequest(), func(*httpsim.Response, error) {})
		e.Gateway.Serve(app.NewAnalyticsRequest(), func(*httpsim.Response, error) {})
		e.Sched.RunFor(time.Second)
	}
	e.Sched.Run()

	q := e.Ratings.NIC().Qdisc().(*tc.Prio)
	if q.Sent(0) == 0 {
		t.Fatal("no high-priority packets through the bottleneck qdisc")
	}
	if q.Sent(1) == 0 {
		t.Fatal("no low-priority packets through the bottleneck qdisc")
	}
}

func TestScavengerAppliedToLowClass(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	e.Gateway.SetClassifier(app.Classifier())
	enableAll(e)

	e.Gateway.Serve(app.NewProductRequest(), func(*httpsim.Response, error) {})
	e.Gateway.Serve(app.NewAnalyticsRequest(), func(*httpsim.Response, error) {})
	e.Sched.Run()

	// reviews-2 (low pool) talks to ratings on a scavenger conn.
	classes := map[string]string{}
	lowSC := e.Mesh.Sidecar("reviews-2")
	lowSC.ForEachPool(func(class string, dst simnet.Addr, conn *transport.Conn) {
		if dst == e.Ratings.Addr() {
			classes[class] = conn.CCName()
		}
	})
	if classes["priority-low"] != "ledbat" {
		t.Fatalf("low-class conn CC = %q, want ledbat (pools: %v)", classes["priority-low"], classes)
	}
	// reviews-1 (high pool) must stay on best-effort.
	hiSC := e.Mesh.Sidecar("reviews-1")
	hiSC.ForEachPool(func(class string, dst simnet.Addr, conn *transport.Conn) {
		if dst == e.Ratings.Addr() && conn.CCName() != "reno" {
			t.Fatalf("high-class conn CC = %s", conn.CCName())
		}
	})
}

func TestMarkToNameRoundTrip(t *testing.T) {
	for _, p := range []string{mesh.PriorityHigh, mesh.PriorityLow} {
		if nameOf(markOf(p)) != p {
			t.Fatalf("round trip broke for %s", p)
		}
	}
	if markOf("") != simnet.MarkDefault || nameOf(simnet.MarkDefault) != "" {
		t.Fatal("default mapping wrong")
	}
	if markOf("bogus") != simnet.MarkDefault {
		t.Fatal("unknown priority must map to default")
	}
}

func TestProvenanceGC(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	e.Gateway.SetClassifier(app.Classifier())
	c := enableAll(e)
	e.Gateway.Serve(app.NewProductRequest(), func(*httpsim.Response, error) {})
	e.Sched.RunFor(time.Second)
	if c.Stats().ProvenanceEntries == 0 {
		t.Fatal("no entries to GC")
	}
	// Idle past the TTL: entries swept.
	e.Sched.RunFor(provTTL + 2*provSweepInterval)
	if got := c.Stats().ProvenanceEntries; got != 0 {
		t.Fatalf("provenance entries after TTL = %d, want 0", got)
	}
}

// TestCrossLayerImprovesLatencySensitiveTail is the integration test of
// the headline claim: under a mixed workload, enabling cross-layer
// prioritization must substantially cut LS tail latency while barely
// affecting LI.
func TestCrossLayerImprovesLatencySensitiveTail(t *testing.T) {
	run := func(optimize bool) (ls, li *workload.Results) {
		e := app.BuildELibrary(app.DefaultELibraryConfig())
		e.Gateway.SetClassifier(app.Classifier())
		if optimize {
			enableAll(e)
		}
		spec := func(name string, newReq func() *httpsim.Request, seed int64) workload.Spec {
			return workload.Spec{
				Name: name, Rate: 40, NewRequest: newReq, Seed: seed,
				Warmup: 2 * time.Second, Measure: 10 * time.Second, Cooldown: time.Second,
			}
		}
		gLS := workload.Start(e.Sched, e.Gateway, spec("ls", app.NewProductRequest, 11))
		gLI := workload.Start(e.Sched, e.Gateway, spec("li", app.NewAnalyticsRequest, 22))
		e.Sched.RunUntil(14 * time.Second)
		return gLS.Results(), gLI.Results()
	}

	lsBase, liBase := run(false)
	lsOpt, liOpt := run(true)

	if lsBase.Measured == 0 || lsOpt.Measured == 0 {
		t.Fatal("no measurements")
	}
	if lsBase.Errors > lsBase.Measured/20 || lsOpt.Errors > lsOpt.Measured/20 {
		t.Fatalf("too many errors: base=%d opt=%d", lsBase.Errors, lsOpt.Errors)
	}
	// Headline: optimized LS p99 must be at least 1.5x better.
	if float64(lsBase.P99()) < 1.5*float64(lsOpt.P99()) {
		t.Fatalf("LS p99 improvement < 1.5x: base=%v opt=%v", lsBase.P99(), lsOpt.P99())
	}
	// LI must still complete and not collapse (paper: <5%% p99 cost;
	// we allow 30%% in the small test window before the bench measures
	// it precisely).
	if liOpt.Measured == 0 {
		t.Fatal("LI starved")
	}
	if float64(liOpt.P99()) > 1.3*float64(liBase.P99()) {
		t.Fatalf("LI p99 degraded too much: base=%v opt=%v", liBase.P99(), liOpt.P99())
	}
	t.Logf("LS p99: base=%v opt=%v; LI p99: base=%v opt=%v",
		lsBase.P99(), lsOpt.P99(), liBase.P99(), liOpt.P99())
}

// TestSDNSteeringUnderFullOptimization verifies optimization (3d) end
// to end: with the full stack enabled and heavy low-priority load, the
// SDN controller steers scavenger flows onto the alternate ratings
// path while high-priority flows stay on the primary.
func TestSDNSteeringUnderFullOptimization(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	e.Gateway.SetClassifier(app.Classifier())

	alt := e.Cluster.AddUplink(e.Ratings, simnet.LinkConfig{Rate: 500 * simnet.Mbps, Delay: 40 * time.Microsecond})
	ctrl := sdn.New(e.Net, 50*time.Millisecond)
	ctrl.AddTERoute(sdn.TERoute{
		Node:      e.Ratings.Node(),
		Primary:   e.Ratings.NIC(),
		Alternate: alt.A(),
		Threshold: 0.3,
	})
	Enable(Config{
		Mesh:            e.Mesh,
		EnableRouting:   true,
		EnableScavenger: true,
		EnableTC:        true,
		EnableSDN:       true,
		SDN:             ctrl,
		PriorityPools: map[string]PoolPair{
			"reviews": {
				High: mesh.SubsetRef{Key: "version", Value: "v1"},
				Low:  mesh.SubsetRef{Key: "version", Value: "v2"},
			},
		},
	})

	spec := func(name string, newReq func() *httpsim.Request, seed int64) workload.Spec {
		return workload.Spec{Name: name, Rate: 40, NewRequest: newReq, Seed: seed,
			Warmup: time.Second, Measure: 8 * time.Second, Cooldown: time.Second}
	}
	workload.Start(e.Sched, e.Gateway, spec("ls", app.NewProductRequest, 31))
	workload.Start(e.Sched, e.Gateway, spec("li", app.NewAnalyticsRequest, 32))
	e.Sched.RunUntil(11 * time.Second)

	if ctrl.FlowCount() == 0 {
		t.Fatal("no flows registered with the SDN controller")
	}
	if ctrl.Moves() == 0 {
		t.Fatal("SDN controller never steered under heavy LI load")
	}
	if alt.A().TxPackets() == 0 && alt.B().TxPackets() == 0 {
		t.Fatal("alternate path carried nothing")
	}
}
