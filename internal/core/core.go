// Package core implements the paper's primary contribution: cross-layer
// prioritization of latency-sensitive requests in a service mesh (§4).
//
// The design has three components, each mapped onto a mesh or
// lower-layer mechanism:
//
//  1. Classify performance objectives at the ingress: the gateway's
//     classifier sets the custom priority header (mesh.HeaderPriority).
//
//  2. Carry the objective through the entire system with each request,
//     via application-level tracing: every sidecar records the
//     (x-request-id -> priority) association when it sees a classified
//     request, and stamps the priority back onto child requests and
//     response connections that share the ID — provenance-based
//     propagation, requiring no application changes beyond the
//     tracing-header copy apps already do.
//
//  3. Cross-layer optimizations keyed on the carried priority:
//     (a) mesh: route priorities to disjoint replica pools (subset
//     routing) and split sidecar connection pools by class;
//     (b) transport: put latency-insensitive transfers on a scavenger
//     congestion controller (LEDBAT / TCP-LP);
//     (c) OS/NIC: install nearly-strict priority queueing (95% share)
//     on the pods' virtual interfaces, matching packet marks;
//     (d) physical network: announce flow priorities to the SDN
//     controller, which steers low-priority flows off hot links.
//
// Each optimization can be enabled independently, which is what the
// ablation experiment (DESIGN.md E5) exercises.
package core

import (
	"time"

	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/sdn"
	"meshlayer/internal/simnet"
	"meshlayer/internal/tc"
	"meshlayer/internal/trace"
	"meshlayer/internal/transport"
)

// PoolPair names the replica subsets serving each priority class of a
// service (optimization 3a).
type PoolPair struct {
	High, Low mesh.SubsetRef
}

// Config selects which cross-layer optimizations to enable.
type Config struct {
	// Mesh is the mesh to install into (required).
	Mesh *mesh.Mesh

	// EnableRouting turns on priority subset routing (3a) for the
	// services listed in PriorityPools.
	EnableRouting bool
	// PriorityPools maps service name -> replica pools per priority.
	PriorityPools map[string]PoolPair

	// EnableScavenger puts low-priority transfers on a scavenger
	// congestion controller (3b).
	EnableScavenger bool
	// ScavengerCC names the scavenger ("ledbat" default, or "lp").
	ScavengerCC string

	// EnableTC installs nearly-strict priority qdiscs on every pod
	// uplink (3c).
	EnableTC bool
	// HighShare is the high class's bandwidth cap (default 0.95 — the
	// paper's "up to 95% of bandwidth").
	HighShare float64

	// EnableSDN announces flow priorities to the SDN controller (3d).
	// TE routes themselves are topology-specific and configured on the
	// controller by the caller.
	EnableSDN bool
	// SDN is required when EnableSDN is set.
	SDN *sdn.Controller
}

// provEntry is one provenance record: the priority class of a request
// ID, plus its last sighting for garbage collection.
type provEntry struct {
	mark simnet.Mark
	seen time.Duration
}

// provTTL bounds how long an idle provenance record is kept.
const provTTL = 2 * time.Minute

// provSweepInterval is the GC cadence.
const provSweepInterval = 30 * time.Second

// Controller is the installed cross-layer prioritization layer.
type Controller struct {
	cfg        Config
	prov       map[string]provEntry
	sweepArmed bool

	// Stats.
	recorded uint64 // provenance records created/refreshed
	stamped  uint64 // priorities stamped onto outbound requests
	restored uint64 // priorities restored onto inbound requests
	qdiscs   int    // TC qdiscs installed
}

// Enable installs the cross-layer controller into the mesh. It must be
// called after all sidecars are injected (it instruments the sidecars
// that exist at call time), and before traffic starts.
func Enable(cfg Config) *Controller {
	if cfg.Mesh == nil {
		panic("core: Config.Mesh is required")
	}
	if cfg.ScavengerCC == "" {
		cfg.ScavengerCC = "ledbat"
	}
	if !transport.IsScavenger(cfg.ScavengerCC) {
		panic("core: ScavengerCC must be a scavenger controller (ledbat or lp)")
	}
	if cfg.HighShare == 0 {
		cfg.HighShare = 0.95
	}
	if cfg.HighShare <= 0 || cfg.HighShare > 1 {
		panic("core: HighShare must be in (0,1]")
	}
	if cfg.EnableSDN && cfg.SDN == nil {
		panic("core: EnableSDN requires a controller")
	}

	c := &Controller{cfg: cfg, prov: make(map[string]provEntry)}
	m := cfg.Mesh

	for _, sc := range m.Sidecars() {
		sc.AddInboundFilter(c.inboundFilter)
		sc.AddOutboundFilter(c.outboundFilter)
		sc.SetConnClassifier(c.classify)
		if cfg.EnableSDN {
			sc.SetConnHook(c.connHook)
		}
	}

	if cfg.EnableRouting {
		for service, pools := range cfg.PriorityPools {
			m.ControlPlane().SetRouteRule(mesh.RouteRule{
				Service: service,
				HeaderRoutes: []mesh.HeaderRoute{
					{Header: mesh.HeaderPriority, Value: mesh.PriorityHigh, Subset: pools.High},
					{Header: mesh.HeaderPriority, Value: mesh.PriorityLow, Subset: pools.Low},
				},
			})
		}
	}

	if cfg.EnableTC {
		c.installTC()
	}

	if cfg.EnableSDN {
		cfg.SDN.Start()
	}
	return c
}

// installTC puts a nearly-strict priority qdisc on both ends of every
// pod uplink — "the kernel's outgoing packet queue on the sidecar
// container's virtual interface" (§4.3 (3)), plus the bridge-side
// direction toward the pod.
func (c *Controller) installTC() {
	m := c.cfg.Mesh
	clock := m.Scheduler().Now
	for _, pod := range m.Cluster().Pods() {
		link := pod.Uplink()
		for _, nic := range []*simnet.NIC{link.A(), link.B()} {
			nic.SetQdisc(tc.NewNearStrict(tc.NearStrictConfig{
				LinkRate:  link.Config().Rate,
				HighShare: c.cfg.HighShare,
			}, clock))
			c.qdiscs++
		}
	}
}

// markOf maps the header value to a packet mark.
func markOf(priority string) simnet.Mark {
	switch priority {
	case mesh.PriorityHigh:
		return simnet.MarkHigh
	case mesh.PriorityLow:
		return simnet.MarkLow
	}
	return simnet.MarkDefault
}

// nameOf maps a packet mark back to the header value.
func nameOf(m simnet.Mark) string {
	switch m {
	case simnet.MarkHigh:
		return mesh.PriorityHigh
	case simnet.MarkLow:
		return mesh.PriorityLow
	}
	return ""
}

// inboundFilter implements provenance recording and the response-path
// half of the cross-layer treatment: the connection a request arrived
// on carries its response bytes, so it inherits the request's mark
// (and, for the low class, the scavenger transport).
func (c *Controller) inboundFilter(ctx httpsim.Ctx, req *httpsim.Request) {
	tid := req.Headers.Get(trace.HeaderRequestID)
	prio := req.Headers.Get(mesh.HeaderPriority)
	now := c.cfg.Mesh.Scheduler().Now()
	if prio == "" && tid != "" {
		if e, ok := c.prov[tid]; ok {
			prio = nameOf(e.mark)
			if prio != "" {
				req.Headers.Set(mesh.HeaderPriority, prio)
				c.restored++
			}
		}
	} else if prio != "" && tid != "" {
		c.prov[tid] = provEntry{mark: markOf(prio), seen: now}
		c.recorded++
		c.armSweep()
	}
	mark := markOf(prio)
	if mark == simnet.MarkDefault || ctx.Conn == nil {
		return
	}
	ctx.Conn.SetMark(mark)
	if c.cfg.EnableScavenger {
		if mark == simnet.MarkLow {
			ctx.Conn.SetCongestionControl(c.cfg.ScavengerCC)
		} else {
			ctx.Conn.SetCongestionControl("reno")
		}
	}
}

// outboundFilter is §4.3 component (2): the sidecar copies the priority
// of the incoming request onto the outgoing requests that share its
// x-request-id, so classification survives applications that do not
// forward the custom header.
func (c *Controller) outboundFilter(req *httpsim.Request) {
	if req.Headers.Has(mesh.HeaderPriority) {
		return
	}
	tid := req.Headers.Get(trace.HeaderRequestID)
	if tid == "" {
		return
	}
	if e, ok := c.prov[tid]; ok {
		if name := nameOf(e.mark); name != "" {
			req.Headers.Set(mesh.HeaderPriority, name)
			c.stamped++
		}
	}
}

// classify splits sidecar connection pools by priority class, stamping
// packet marks and selecting the transport per class.
func (c *Controller) classify(req *httpsim.Request) mesh.ConnClass {
	switch req.Headers.Get(mesh.HeaderPriority) {
	case mesh.PriorityHigh:
		return mesh.ConnClass{
			Name:    "priority-high",
			Options: transport.Options{CC: "reno", Mark: simnet.MarkHigh},
		}
	case mesh.PriorityLow:
		cc := "reno"
		if c.cfg.EnableScavenger {
			cc = c.cfg.ScavengerCC
		}
		return mesh.ConnClass{
			Name:    "priority-low",
			Options: transport.Options{CC: cc, Mark: simnet.MarkLow},
		}
	}
	return mesh.DefaultConnClass
}

// connHook announces new upstream connections to the SDN controller,
// both directions (responses dominate the wire).
func (c *Controller) connHook(conn *transport.Conn, class mesh.ConnClass) {
	c.cfg.SDN.RegisterFlow(conn.Flow(), class.Options.Mark)
	c.cfg.SDN.RegisterFlow(conn.Flow().Reverse(), class.Options.Mark)
	conn.AddCloseListener(func(error) {
		c.cfg.SDN.UnregisterFlow(conn.Flow())
		c.cfg.SDN.UnregisterFlow(conn.Flow().Reverse())
	})
}

// armSweep schedules the provenance GC while records exist. The sweep
// disarms itself once the map drains, so an idle mesh leaves the event
// queue empty (simulations can run to completion).
func (c *Controller) armSweep() {
	if c.sweepArmed {
		return
	}
	c.sweepArmed = true
	c.cfg.Mesh.Scheduler().After(provSweepInterval, func() {
		c.sweepArmed = false
		now := c.cfg.Mesh.Scheduler().Now()
		for id, e := range c.prov {
			if now-e.seen > provTTL {
				delete(c.prov, id)
			}
		}
		if len(c.prov) > 0 {
			c.armSweep()
		}
	})
}

// Stats reports the controller's activity counters.
type Stats struct {
	ProvenanceEntries int
	Recorded          uint64
	Stamped           uint64
	Restored          uint64
	QdiscsInstalled   int
}

// Stats snapshots the controller's counters.
func (c *Controller) Stats() Stats {
	return Stats{
		ProvenanceEntries: len(c.prov),
		Recorded:          c.recorded,
		Stamped:           c.stamped,
		Restored:          c.restored,
		QdiscsInstalled:   c.qdiscs,
	}
}
