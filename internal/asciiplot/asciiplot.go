// Package asciiplot renders multi-series line charts as text — enough
// to regenerate the paper's Figure 4 in a terminal. Scales are linear,
// axes auto-range, and each series gets a distinct glyph.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a renderable plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 60)
	Height int // plot-area rows (default 16)
	Series []Series
}

// glyphs mark successive series' points.
var glyphs = []byte{'o', '*', '+', 'x', '#', '@'}

// Render draws the chart. Charts with no points render a placeholder.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return "(no data)\n"
	}
	if minY > 0 && minY < maxY {
		minY = 0 // anchor latency-style charts at zero
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		return int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
	}
	rowOf := func(y float64) int {
		return (h - 1) - int(math.Round((y-minY)/(maxY-minY)*float64(h-1)))
	}
	for si, s := range c.Series {
		g := glyphs[si%len(glyphs)]
		// Connect consecutive points with interpolated marks.
		for i := 0; i+1 < len(s.X) && i+1 < len(s.Y); i++ {
			x0, y0 := col(s.X[i]), rowOf(s.Y[i])
			x1, y1 := col(s.X[i+1]), rowOf(s.Y[i+1])
			steps := max(abs(x1-x0), abs(y1-y0))
			if steps == 0 {
				steps = 1
			}
			for t := 0; t <= steps; t++ {
				x := x0 + (x1-x0)*t/steps
				y := y0 + (y1-y0)*t/steps
				if y >= 0 && y < h && x >= 0 && x < w {
					grid[y][x] = '.'
				}
			}
		}
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := col(s.X[i]), rowOf(s.Y[i])
			if y >= 0 && y < h && x >= 0 && x < w {
				grid[y][x] = g
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yFmt := func(v float64) string { return trimFloat(v) }
	labelW := 0
	for _, v := range []float64{maxY, minY, (minY + maxY) / 2} {
		if l := len(yFmt(v)); l > labelW {
			labelW = l
		}
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yFmt(maxY))
		case h / 2:
			label = fmt.Sprintf("%*s", labelW, yFmt((minY+maxY)/2))
		case h - 1:
			label = fmt.Sprintf("%*s", labelW, yFmt(minY))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %s%s%s\n",
		strings.Repeat(" ", labelW),
		trimFloat(minX),
		strings.Repeat(" ", maxInt(1, w-len(trimFloat(minX))-len(trimFloat(maxX)))),
		trimFloat(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", labelW), glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
