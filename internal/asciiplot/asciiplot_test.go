package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "rps",
		YLabel: "ms",
		Series: []Series{
			{Name: "base", X: []float64{10, 20, 30}, Y: []float64{5, 20, 60}},
			{Name: "opt", X: []float64{10, 20, 30}, Y: []float64{5, 5, 6}},
		},
	}
	out := c.Render()
	for _, want := range []string{"test chart", "base", "opt", "x: rps", "o", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{}
	if got := c.Render(); got != "(no data)\n" {
		t.Fatalf("empty chart: %q", got)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := Chart{Series: []Series{{Name: "p", X: []float64{1}, Y: []float64{5}}}}
	out := c.Render()
	if !strings.Contains(out, "o") {
		t.Fatalf("single point not rendered:\n%s", out)
	}
}

func TestRenderMonotonePlacement(t *testing.T) {
	// A rising curve's last point must be on a higher row (smaller
	// index) than its first.
	c := Chart{Width: 40, Height: 10, Series: []Series{
		{Name: "up", X: []float64{0, 1}, Y: []float64{0, 100}},
	}}
	out := c.Render()
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, line := range lines {
		if strings.Contains(line, "o") {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow >= lastRow {
		t.Fatalf("rising curve misplaced: first=%d last=%d\n%s", firstRow, lastRow, out)
	}
}

func TestRenderDeterministic(t *testing.T) {
	c := Chart{Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{3, 1, 2}}}}
	if c.Render() != c.Render() {
		t.Fatal("render not deterministic")
	}
}
