package meshlayer

import (
	"fmt"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/chaos"
	"meshlayer/internal/ctrlplane"
	"meshlayer/internal/mesh"
	"meshlayer/internal/workload"
)

// ---------- E18: control-plane propagation under churn ----------

// CtrlStormZones is the default failure-domain count of the E18
// topology (one full application replica per zone, as in E17).
const CtrlStormZones = 3

// CtrlPlaneRow is one propagation configuration measured under the
// deploy-storm + flash-crowd suite.
type CtrlPlaneRow struct {
	Config   string
	Zones    int
	Debounce time.Duration
	// Distributed is false for the instant-propagation baseline row.
	Distributed bool

	LSP99 time.Duration
	// Avail is served/total over the whole measured window; StormAvail
	// the same over the deploy-storm window only.
	Avail, StormAvail float64
	// CrowdP99 is the latency-sensitive p99 of the flash-crowd burst
	// that lands mid-storm.
	CrowdP99 time.Duration

	// Control-plane cost and staleness (zero-valued for the baseline):
	// pushes split by kind, bytes on the wire, push timeouts, forced
	// full resyncs, the p99 of config age at apply time, and the widest
	// server-to-sidecar version gap seen.
	DeltaPushes, FullPushes uint64
	WireBytes               uint64
	Timeouts, Resyncs       uint64
	StaleP99                time.Duration
	MaxLag                  uint64
}

// ctrlStormSuite scripts the deploy storm: every application pod
// restarts once — drained (readiness off) for a grace window, then
// killed, then back — staggered across services and zones so no
// service ever loses all replicas at once. Sidecars with fresh
// discovery stop routing to a pod during its drain; sidecars on stale
// snapshots keep dialing it through the kill. Returns the scenario and
// the storm window [start, end) for availability scoring.
func ctrlStormSuite(zones []string, warmup, measure time.Duration) (chaos.Scenario, time.Duration, time.Duration) {
	var pods []string
	for i := range zones {
		suffix := string(rune('a' + i))
		for _, svc := range []string{"frontend", "details", "reviews", "ratings"} {
			pods = append(pods, svc+"-"+suffix)
		}
	}
	stormAt := warmup + measure/10
	stormLen := 3 * measure / 10
	stagger := stormLen / time.Duration(len(pods))
	downFor := measure / 20
	grace := 200 * time.Millisecond
	events := make([]chaos.Event, len(pods))
	for k, pod := range pods {
		events[k] = chaos.Event{
			At: stormAt + time.Duration(k)*stagger, Duration: downFor,
			Fault: chaos.Restart{Pod: pod, Grace: grace},
		}
	}
	stormEnd := stormAt + time.Duration(len(pods)-1)*stagger + downFor + time.Second
	return chaos.Scenario{Name: "e18-deploy-storm", Events: events}, stormAt, stormEnd
}

// RunCtrlPlane measures the zoned e-library under a rolling deploy
// storm plus a mid-storm flash crowd, across control-plane propagation
// configurations: the instant-propagation baseline, delta pushes over
// a debounce ladder, state-of-the-world pushes, and a larger fleet.
// Defenses are the E15 level-0 stack (single attempts, no retries, no
// active health checks), so endpoint liveness reaches sidecars only
// through discovery pushes — the staleness of a sidecar's snapshot is
// exactly what decides whether it keeps dialing a killed pod, and each
// such dial is a user-visible failure rather than a retried one.
func RunCtrlPlane(seed int64, warmup, measure time.Duration) []CtrlPlaneRow {
	if warmup <= 0 {
		warmup = 2 * time.Second
	}
	if measure <= 0 {
		measure = 20 * time.Second
	}
	configs := []struct {
		name     string
		zones    int
		dist     bool
		debounce time.Duration
		full     bool
	}{
		{"instant propagation (shared state)", CtrlStormZones, false, 0, false},
		{"delta push, 10ms debounce", CtrlStormZones, true, 10 * time.Millisecond, false},
		{"delta push, 100ms debounce", CtrlStormZones, true, 100 * time.Millisecond, false},
		{"delta push, 500ms debounce", CtrlStormZones, true, 500 * time.Millisecond, false},
		{"delta push, 2s debounce", CtrlStormZones, true, 2 * time.Second, false},
		{"full-state push, 100ms debounce", CtrlStormZones, true, 100 * time.Millisecond, true},
		{"delta push, 100ms debounce, 6 zones", 2 * CtrlStormZones, true, 100 * time.Millisecond, false},
	}
	out := make([]CtrlPlaneRow, len(configs))
	runIndexed(len(configs), func(i int) {
		c := configs[i]
		out[i] = runCtrlPlaneOnce(c.name, c.zones, c.dist, c.debounce, c.full, seed, warmup, measure)
	})
	return out
}

func runCtrlPlaneOnce(name string, zones int, dist bool, debounce time.Duration, full bool,
	seed int64, warmup, measure time.Duration) CtrlPlaneRow {
	appCfg := app.DefaultELibraryConfig()
	appCfg.Zones = zones
	// No ratings bottleneck in this topology: with one, promptly
	// removing a drained replica concentrates the 2 MB analytics
	// transfers on the surviving bottleneck links, and that capacity
	// effect confounds the propagation effect E18 isolates.
	appCfg.BottleneckRate = appCfg.LinkRate
	s := NewScenario(ScenarioConfig{Seed: seed, App: appCfg})
	e := s.App
	applyChaosDefenses(e.Mesh.ControlPlane(), 0)
	if dist {
		// Tight reconnect loop: a restarted pod's sidecar is resynced
		// within ~600ms of coming back, so the time it routes on its
		// frozen pre-restart snapshot is bounded and the debounce
		// interval — not reconnect detection — dominates staleness.
		e.Mesh.ControlPlane().EnableDistribution(mesh.DistributionConfig{
			Debounce: debounce, FullState: full,
			PushTimeout: 500 * time.Millisecond, ResyncDelay: 100 * time.Millisecond,
		})
	}

	suite, stormFrom, stormTo := ctrlStormSuite(e.Zones, warmup, measure)
	eng := chaos.NewEngine(&chaos.Target{Sched: e.Sched, Cluster: e.Cluster, Mesh: e.Mesh})
	eng.Schedule(suite)

	// The flash crowd: a 3x burst of latency-sensitive traffic arriving
	// mid-storm, when part of the fleet is mid-restart. How quickly
	// recovered capacity re-enters sidecar snapshots bounds how well it
	// is absorbed.
	crowdAt := stormFrom + (stormTo-stormFrom)/2
	crowdFor := measure / 4
	crowdRec := chaos.NewRecorder(measure / 40)
	var crowd *workload.Generator
	e.Sched.After(crowdAt, func() {
		crowd = workload.Start(e.Sched, e.Gateway, workload.Spec{
			Name: "flash-crowd", Rate: 90, NewRequest: app.NewProductRequest,
			Seed: seed*7 + 5, Measure: crowdFor, Cooldown: time.Second,
			OnComplete: crowdRec.Observe,
		})
	})

	lsRec := chaos.NewRecorder(measure / 40)
	liRec := chaos.NewRecorder(measure / 40)
	r := s.RunMixed(MixedConfig{
		RPS: 30, Seed: seed, Warmup: warmup, Measure: measure,
		LSObserver: lsRec.Observe, LIObserver: liRec.Observe,
	})

	avail := func(from, to time.Duration) float64 {
		var ok, fail uint64
		for _, rec := range []*chaos.Recorder{lsRec, liRec, crowdRec} {
			o, f := rec.Counts(from, to)
			ok += o
			fail += f
		}
		if ok+fail == 0 {
			return 1
		}
		return float64(ok) / float64(ok+fail)
	}

	row := CtrlPlaneRow{
		Config: name, Zones: zones, Debounce: debounce, Distributed: dist,
		LSP99:      r.LS.P99,
		Avail:      avail(warmup, warmup+measure),
		StormAvail: avail(stormFrom, stormTo),
	}
	if crowd != nil {
		row.CrowdP99 = crowd.Results().P99()
	}
	if srv := e.Mesh.ControlPlane().Distribution(); srv != nil {
		st := srv.Stats()
		row.DeltaPushes, row.FullPushes = st.DeltaPushes, st.FullPushes
		row.WireBytes = st.WireBytes
		row.Timeouts, row.Resyncs = st.Timeouts, st.Resyncs
		row.MaxLag = st.MaxLag
		row.StaleP99 = e.Mesh.Metrics().
			Histogram(ctrlplane.MetricStalenessSeconds, nil).QuantileDuration(0.99)
	}
	return row
}

// FormatCtrlPlane renders the E18 table.
func FormatCtrlPlane(rows []CtrlPlaneRow) string {
	t := newTable("configuration", "LS p99", "avail", "storm avail", "crowd p99",
		"pushes (Δ/full)", "wire KB", "timeouts", "resyncs", "stale p99", "max lag")
	for _, r := range rows {
		pushes, wire, timeouts, resyncs, stale, lag := "-", "-", "-", "-", "-", "-"
		if r.Distributed {
			pushes = fmt.Sprintf("%d/%d", r.DeltaPushes, r.FullPushes)
			wire = fmt.Sprintf("%.1f", float64(r.WireBytes)/1024)
			timeouts = fmt.Sprint(r.Timeouts)
			resyncs = fmt.Sprint(r.Resyncs)
			stale = ms(r.StaleP99)
			lag = fmt.Sprint(r.MaxLag)
		}
		t.row(r.Config, ms(r.LSP99),
			fmt.Sprintf("%.2f%%", 100*r.Avail),
			fmt.Sprintf("%.2f%%", 100*r.StormAvail),
			ms(r.CrowdP99), pushes, wire, timeouts, resyncs, stale, lag)
	}
	return "E18 — control-plane propagation under a deploy storm + flash crowd (rolling restarts, 30 RPS mixed + 90 RPS burst)\n" + t.String()
}
