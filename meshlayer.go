// Package meshlayer is the public API of this repository: a library for
// studying service meshes as a network layer, reproducing "Leveraging
// Service Meshes as a New Network Layer" (Ashok, Godfrey, Mittal —
// HotNets '21).
//
// The library bundles, from the bottom up:
//
//   - a deterministic packet-level network simulator with Linux-tc-style
//     queueing disciplines (internal/simnet, internal/tc);
//   - a reliable transport with pluggable congestion control, including
//     the scavenger protocols LEDBAT and TCP-LP (internal/transport);
//   - an HTTP-style messaging layer, a Kubernetes-like cluster model,
//     and an Istio-like service mesh with sidecars, a control plane,
//     distributed tracing, and an ingress gateway (internal/httpsim,
//     internal/cluster, internal/mesh, internal/trace);
//   - the paper's contribution, cross-layer prioritization via
//     provenance tracing (internal/core), plus an SDN controller for
//     the lower-layer coordination variant (internal/sdn);
//   - sample applications and a wrk2-style open-loop load generator
//     (internal/app, internal/workload).
//
// This package exposes the scenario-level API: build the paper's
// e-library testbed, enable any subset of the cross-layer
// optimizations, drive mixed workloads, and collect latency
// distributions. Each experiment from the paper's evaluation has a
// runner in experiments.go, used by both cmd/meshbench and the
// repository's benchmarks.
package meshlayer

import (
	"fmt"
	"strings"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/core"
	"meshlayer/internal/hdr"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/sdn"
	"meshlayer/internal/simnet"
	"meshlayer/internal/workload"
)

// Optimization selects which of the paper's §4.2(3) cross-layer
// optimizations are active.
type Optimization struct {
	// Routing is (3a): priority-pinned replica pools in the mesh.
	Routing bool
	// Scavenger is (3b): latency-insensitive transfers on LEDBAT.
	Scavenger bool
	// TC is (3c): nearly-strict (95%) priority queueing at virtual NICs.
	TC bool
	// SDN is (3d): flow priorities announced to an SDN controller that
	// steers low-priority flows onto an alternate path when the
	// bottleneck runs hot.
	SDN bool
}

// AllOptimizations enables every cross-layer optimization.
func AllOptimizations() Optimization {
	return Optimization{Routing: true, Scavenger: true, TC: true, SDN: true}
}

// PaperOptimizations matches the paper's prototype (§4.3): priority
// routing plus TC packet prioritization. (Scavenger transport and SDN
// coordination are sketched as 3b/3d but left to future work there;
// this repo implements them too — see the ablation experiment.)
func PaperOptimizations() Optimization {
	return Optimization{Routing: true, TC: true}
}

// None disables all optimizations (the baseline).
func None() Optimization { return Optimization{} }

// Any reports whether at least one optimization is on.
func (o Optimization) Any() bool { return o.Routing || o.Scavenger || o.TC || o.SDN }

// ParseOptimizations parses a comma-separated optimization list
// ("routing,tc", "all", "baseline", "") as the CLIs accept it.
func ParseOptimizations(s string) (Optimization, error) {
	var o Optimization
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "", "none", "baseline":
		case "routing":
			o.Routing = true
		case "tc":
			o.TC = true
		case "scavenger":
			o.Scavenger = true
		case "sdn":
			o.SDN = true
		case "all":
			o = AllOptimizations()
		default:
			return Optimization{}, fmt.Errorf("unknown optimization %q", part)
		}
	}
	return o, nil
}

// String names the combination compactly ("routing+tc").
func (o Optimization) String() string {
	if !o.Any() {
		return "baseline"
	}
	s := ""
	add := func(on bool, name string) {
		if !on {
			return
		}
		if s != "" {
			s += "+"
		}
		s += name
	}
	add(o.Routing, "routing")
	add(o.Scavenger, "scavenger")
	add(o.TC, "tc")
	add(o.SDN, "sdn")
	return s
}

// Scenario is a fully assembled e-library testbed with optional
// cross-layer prioritization, ready to serve requests.
type Scenario struct {
	App        *app.ELibrary
	CrossLayer *core.Controller // nil when no optimization is enabled
	SDN        *sdn.Controller  // nil unless Optimization.SDN
	Opt        Optimization
}

// ScenarioConfig parameterizes NewScenario.
type ScenarioConfig struct {
	// Opt selects the active optimizations.
	Opt Optimization
	// Seed drives all randomness (mesh jitter; workload seeds are
	// separate). Equal seeds give identical runs.
	Seed int64
	// App overrides the e-library configuration; zero selects the
	// paper-shaped default (1 Gbps bottleneck, 2 MB LI responses).
	App app.ELibraryConfig
}

// NewScenario builds the paper's Fig. 3 testbed: the e-library on a
// simulated single-host cluster, the mesh, the ingress classifier, and
// whichever cross-layer optimizations cfg selects.
func NewScenario(cfg ScenarioConfig) *Scenario {
	appCfg := cfg.App
	if appCfg.LinkRate == 0 {
		appCfg = app.DefaultELibraryConfig()
	}
	appCfg.Mesh.Seed = cfg.Seed
	e := app.BuildELibrary(appCfg)
	e.Gateway.SetClassifier(app.Classifier())

	s := &Scenario{App: e, Opt: cfg.Opt}
	if !cfg.Opt.Any() {
		return s
	}

	coreCfg := core.Config{
		Mesh:            e.Mesh,
		EnableRouting:   cfg.Opt.Routing,
		EnableScavenger: cfg.Opt.Scavenger,
		EnableTC:        cfg.Opt.TC,
		PriorityPools: map[string]core.PoolPair{
			"reviews": {
				High: mesh.SubsetRef{Key: "version", Value: "v1"},
				Low:  mesh.SubsetRef{Key: "version", Value: "v2"},
			},
		},
	}
	if cfg.Opt.SDN {
		// Give ratings a second, smaller uplink as the TE alternate
		// path, and steer low-priority flows onto it under load.
		alt := e.Cluster.AddUplink(e.Ratings, simnet.LinkConfig{
			Rate:  appCfg.BottleneckRate / 2,
			Delay: 40 * time.Microsecond,
		})
		ctrl := sdn.New(e.Net, 50*time.Millisecond)
		ctrl.AddTERoute(sdn.TERoute{
			Node:      e.Ratings.Node(),
			Primary:   e.Ratings.NIC(),
			Alternate: alt.A(),
			Threshold: 0.6,
		})
		s.SDN = ctrl
		coreCfg.EnableSDN = true
		coreCfg.SDN = ctrl
	}
	s.CrossLayer = core.Enable(coreCfg)
	return s
}

// WorkloadStats summarizes one workload class's measured window.
type WorkloadStats struct {
	P50, P90, P99, Mean time.Duration
	Count, Errors       uint64
	Hist                *hdr.Histogram
}

func statsOf(r *workload.Results) WorkloadStats {
	return WorkloadStats{
		P50:    r.P50(),
		P90:    r.Hist.QuantileDuration(0.90),
		P99:    r.P99(),
		Mean:   r.Mean(),
		Count:  r.Measured,
		Errors: r.Errors,
		Hist:   r.Hist,
	}
}

// MixedConfig parameterizes RunMixed: the paper's two simultaneous
// workloads at a common average rate.
type MixedConfig struct {
	// RPS is the average arrival rate of EACH workload (paper: 10-50).
	RPS float64
	// Seed separates arrival randomness across runs.
	Seed int64
	// Warmup, Measure, Cooldown bracket the measured window. Zero
	// values select 2s / 20s / 1s (the paper ran 5 minutes; latency
	// distributions here converge much faster because the simulation
	// is noiseless).
	Warmup, Measure, Cooldown time.Duration
	// LSObserver and LIObserver, if set, see every completion of the
	// respective workload (completion time, latency, failed) — plug in
	// workload.Timeline.Observer for latency-over-time views.
	LSObserver, LIObserver func(at, latency time.Duration, failed bool)
}

func (c *MixedConfig) fill() {
	if c.Warmup == 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Measure == 0 {
		c.Measure = 20 * time.Second
	}
	if c.Cooldown == 0 {
		c.Cooldown = time.Second
	}
}

// MixedResult reports both workloads of one mixed run.
type MixedResult struct {
	Opt    Optimization
	RPS    float64
	LS, LI WorkloadStats
}

// RunMixed drives the paper's §4.3 experiment once: latency-sensitive
// product-page traffic and latency-insensitive analytics traffic hit
// the ingress simultaneously at cfg.RPS each; returns the measured
// latency distributions.
func (s *Scenario) RunMixed(cfg MixedConfig) MixedResult {
	cfg.fill()
	e := s.App
	mk := func(name string, newReq func() *httpsim.Request, seed int64, obs func(at, lat time.Duration, failed bool)) workload.Spec {
		return workload.Spec{
			Name: name, Rate: cfg.RPS, NewRequest: newReq, Seed: seed,
			Warmup: cfg.Warmup, Measure: cfg.Measure, Cooldown: cfg.Cooldown,
			OnComplete: obs,
		}
	}
	ls := workload.Start(e.Sched, e.Gateway, mk("latency-sensitive", app.NewProductRequest, cfg.Seed*2+1, cfg.LSObserver))
	li := workload.Start(e.Sched, e.Gateway, mk("latency-insensitive", app.NewAnalyticsRequest, cfg.Seed*2+2, cfg.LIObserver))
	total := cfg.Warmup + cfg.Measure + cfg.Cooldown
	e.Sched.RunFor(total + 2*time.Second) // drain stragglers
	return MixedResult{Opt: s.Opt, RPS: cfg.RPS, LS: statsOf(ls.Results()), LI: statsOf(li.Results())}
}

// RunMixedOnce builds a fresh scenario and runs one mixed measurement —
// the one-call form used by the experiment sweeps.
func RunMixedOnce(opt Optimization, cfg MixedConfig) MixedResult {
	s := NewScenario(ScenarioConfig{Opt: opt, Seed: cfg.Seed})
	return s.RunMixed(cfg)
}

// RequestClass selects one of the e-library's two workload classes.
type RequestClass int

// The two request classes of the motivating scenario (§4.1).
const (
	// ProductRequest is a latency-sensitive user-facing page view.
	ProductRequest RequestClass = iota
	// AnalyticsRequest is a latency-insensitive batch scan with a
	// ~200x larger response.
	AnalyticsRequest
)

// Serve submits one external request of the class and reports its
// end-to-end latency and HTTP status. The callback runs inside the
// simulation; combine with Run/RunFor.
func (s *Scenario) Serve(class RequestClass, cb func(latency time.Duration, status int, err error)) {
	req := app.NewProductRequest()
	if class == AnalyticsRequest {
		req = app.NewAnalyticsRequest()
	}
	start := s.App.Sched.Now()
	s.App.Gateway.Serve(req, func(resp *httpsim.Response, err error) {
		status := 0
		if resp != nil {
			status = resp.Status
		}
		if cb != nil {
			cb(s.App.Sched.Now()-start, status, err)
		}
	})
}

// Run advances the simulation until no work remains.
func (s *Scenario) Run() { s.App.Sched.Run() }

// RunFor advances the simulation by d.
func (s *Scenario) RunFor(d time.Duration) { s.App.Sched.RunFor(d) }

// Now returns the current simulated time.
func (s *Scenario) Now() time.Duration { return s.App.Sched.Now() }

// TraceTrees renders every collected distributed trace as an indented
// call tree, annotated with its provenance class.
func (s *Scenario) TraceTrees() []string {
	tracer := s.App.Mesh.Tracer()
	var out []string
	for _, id := range tracer.TraceIDs() {
		tree := tracer.Tree(id)
		if tree == nil {
			continue
		}
		hdr := "trace " + id
		if p := tracer.RootTag(id, "priority"); p != "" {
			hdr += " (priority=" + p + ")"
		}
		out = append(out, hdr+"\n"+tree.Format())
	}
	return out
}
