package meshlayer

import (
	"testing"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/autoscale"
	"meshlayer/internal/lint/leakcheck"
	"meshlayer/internal/mesh"
	"meshlayer/internal/workload"
)

// Short windows keep the simulated runs affordable under -race;
// cmd/meshbench -exp ctrlplane is the paper-scale version.
const (
	ctrlStormTestWarmup  = 1 * time.Second
	ctrlStormTestMeasure = 6 * time.Second
)

// TestCtrlPlaneStormTradeoff is E18's headline claim at test scale:
// against the same deploy storm, a long debounce sends far fewer
// pushes but leaves sidecars routing on older state — staleness and
// version lag grow, and availability through the storm drops below
// the short-debounce configuration.
func TestCtrlPlaneStormTradeoff(t *testing.T) {
	leakcheck.Check(t)
	seed := int64(5)
	instant := runCtrlPlaneOnce("instant", CtrlStormZones, false, 0, false, seed, ctrlStormTestWarmup, ctrlStormTestMeasure)
	fresh := runCtrlPlaneOnce("fresh", CtrlStormZones, true, 100*time.Millisecond, false, seed, ctrlStormTestWarmup, ctrlStormTestMeasure)
	stale := runCtrlPlaneOnce("stale", CtrlStormZones, true, 2*time.Second, false, seed, ctrlStormTestWarmup, ctrlStormTestMeasure)

	if instant.Distributed || instant.DeltaPushes+instant.FullPushes != 0 {
		t.Fatalf("instant-propagation baseline recorded control-plane pushes: %+v", instant)
	}
	if instant.StormAvail >= 1 {
		t.Fatal("deploy storm cost nothing; the suite is not exercising failures")
	}
	for _, r := range []CtrlPlaneRow{fresh, stale} {
		if r.DeltaPushes+r.FullPushes == 0 || r.WireBytes == 0 {
			t.Fatalf("%s: no pushes recorded: %+v", r.Config, r)
		}
		if r.Timeouts == 0 || r.Resyncs == 0 {
			t.Fatalf("%s: restarts should force push timeouts and resyncs: %+v", r.Config, r)
		}
	}
	// The tradeoff, both directions: fewer pushes, more staleness.
	if stale.DeltaPushes+stale.FullPushes >= fresh.DeltaPushes+fresh.FullPushes {
		t.Fatalf("2s debounce sent %d pushes, 100ms sent %d; batching must reduce push volume",
			stale.DeltaPushes+stale.FullPushes, fresh.DeltaPushes+fresh.FullPushes)
	}
	if stale.StaleP99 <= fresh.StaleP99 {
		t.Fatalf("2s-debounce staleness p99 %v not above 100ms-debounce %v", stale.StaleP99, fresh.StaleP99)
	}
	if stale.MaxLag <= fresh.MaxLag {
		t.Fatalf("2s-debounce max version lag %d not above 100ms-debounce %d", stale.MaxLag, fresh.MaxLag)
	}
	if stale.StormAvail >= fresh.StormAvail {
		t.Fatalf("2s-debounce storm availability %.2f%% not below 100ms-debounce %.2f%%; staleness must widen the dip",
			100*stale.StormAvail, 100*fresh.StormAvail)
	}
}

// TestAutoscaleChurnPropagatesViaDistribution closes the loop between
// the autoscaler and the distributing control plane: scale-ups create
// pods mid-run, the new sidecars subscribe, the endpoint change is
// pushed, and every subscriber converges to the server's version once
// the churn settles.
func TestAutoscaleChurnPropagatesViaDistribution(t *testing.T) {
	leakcheck.Check(t)
	d, err := app.BuildDAG(app.DAGSpec{
		Entry: "api",
		Services: []app.ServiceSpec{{
			Name: "api", Replicas: 1, Workers: 4,
			ServiceTime: 20 * time.Millisecond, ResponseBytes: 2 << 10,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := d.Mesh.ControlPlane()
	cp.EnableDistribution(mesh.DistributionConfig{Debounce: 50 * time.Millisecond})
	srv := cp.Distribution()
	v0 := srv.Version()

	ctrl := autoscale.New(autoscale.Config{
		Cluster:  d.Cluster,
		Scaler:   d,
		Targets:  []autoscale.Target{{Service: "api", Min: 1, Max: 8, Utilization: 0.6}},
		Interval: 2 * time.Second,
	})
	ctrl.Start()
	workload.Start(d.Sched, d.Gateway, workload.Spec{
		Name: "load", Rate: 600, Seed: 1,
		NewRequest: d.NewDAGRequest,
		Warmup:     time.Second, Measure: 15 * time.Second, Cooldown: time.Second,
	})
	d.Sched.RunUntil(20 * time.Second)
	ctrl.Stop()
	d.Sched.RunFor(2 * time.Second)

	if ctrl.ScaleUps() == 0 {
		t.Fatal("no scale-up recorded; the churn source never fired")
	}
	if srv.Version() <= v0 {
		t.Fatalf("server version %d did not advance past %d despite scale-up churn", srv.Version(), v0)
	}
	if srv.Stats().Acks == 0 {
		t.Fatal("no acknowledged pushes")
	}
	// Every sidecar — including ones injected mid-run by the scaler —
	// must have converged to the server's version.
	for _, pod := range d.Cluster.Pods() {
		if d.Mesh.Sidecar(pod.Name()) == nil {
			continue
		}
		if got := srv.SubscriberVersion(pod.Name()); got != srv.Version() {
			t.Fatalf("subscriber %s at version %d, server at %d: not converged after churn settled",
				pod.Name(), got, srv.Version())
		}
	}
	if lag := srv.MaxLag(); lag != 0 {
		t.Fatalf("version lag %d after churn settled, want 0", lag)
	}
}
