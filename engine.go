package meshlayer

import (
	"fmt"
	"runtime"
	"time"

	"meshlayer/internal/simnet"
)

// ---------- E16: simulation engine throughput (meta-experiment) ----------

// EngineBench holds the E16 measurements: raw engine throughput (the
// ceiling on simulated traffic for every other experiment) and the
// wall-clock of a reference sweep with and without the parallel worker
// pool. Unlike E1–E15 this measures the simulator itself, so the
// numbers are host-dependent and excluded from `-exp all` and the
// deterministic goldens.
type EngineBench struct {
	// Scheduler hot path: a steady population of self-rescheduling
	// timers, so each event is one schedule + one heap pop + dispatch.
	SchedEvents    int
	SchedNsPerOp   float64
	SchedAllocsPer float64

	// Packet hot path: inject -> route -> qdisc -> serialize ->
	// propagate -> deliver over one fast link with a fixed window.
	PktPackets   int
	PktNsPerOp   float64
	PktAllocsPer float64

	// Reference sweep (two fig4 levels, short windows) wall-clock, run
	// sequentially and at the configured parallelism.
	SweepSeqSec float64
	SweepParSec float64
	Parallelism int
}

// measured runs fn and returns its wall-clock plus the number of heap
// allocations it performed (cumulative mallocs are GC-independent).
func measured(fn func()) (time.Duration, uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now() //meshvet:allow walltime host-side harness timing, never feeds sim state or goldens
	fn()
	elapsed := time.Since(start) //meshvet:allow walltime host-side harness timing, never feeds sim state or goldens
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs
}

// RunEngineBench measures engine throughput. events and packets default
// to 2M and 500k; the sweep windows are fixed so the sequential and
// parallel runs do identical simulation work.
func RunEngineBench(events, packets int) EngineBench {
	if events <= 0 {
		events = 2_000_000
	}
	if packets <= 0 {
		packets = 500_000
	}
	var out EngineBench
	out.SchedEvents, out.PktPackets = events, packets
	out.Parallelism = MaxParallel

	// Scheduler hot path.
	{
		s := simnet.NewScheduler()
		const population = 1024
		scheduled := 0
		var tick func()
		tick = func() {
			if scheduled < events {
				scheduled++
				s.After(time.Duration(scheduled%13+1)*time.Microsecond, tick)
			}
		}
		for i := 0; i < population && scheduled < events; i++ {
			scheduled++
			s.After(time.Duration(i%13+1)*time.Microsecond, tick)
		}
		elapsed, mallocs := measured(s.Run)
		out.SchedNsPerOp = float64(elapsed.Nanoseconds()) / float64(events)
		out.SchedAllocsPer = float64(mallocs) / float64(events)
	}

	// Packet hot path.
	{
		s := simnet.NewScheduler()
		net := simnet.NewNetwork(s)
		na, nb := net.AddNode("a"), net.AddNode("b")
		net.Connect(na, nb, simnet.LinkConfig{Rate: 15 * simnet.Gbps, Delay: 10 * time.Microsecond})
		flow := simnet.FlowKey{Src: na.Addr(), Dst: nb.Addr(), SrcPort: 1, DstPort: 2, Proto: simnet.ProtoUDP}
		const window = 64
		sent, delivered := 0, 0
		var send func()
		send = func() {
			for sent < packets && sent-delivered < window {
				p := net.AllocPacket()
				p.Flow = flow
				p.Size = simnet.MTU
				na.Inject(p)
				sent++
			}
		}
		nb.SetDeliver(func(*simnet.Packet) { delivered++; send() })
		send()
		elapsed, mallocs := measured(s.Run)
		out.PktNsPerOp = float64(elapsed.Nanoseconds()) / float64(packets)
		out.PktAllocsPer = float64(mallocs) / float64(packets)
	}

	// Reference sweep, sequential then parallel. The sequential arm pins
	// Workers on its own sweep rather than toggling the MaxParallel
	// global, so -parallel (and any concurrent sweep) is unaffected.
	sweep := func(workers int) {
		RunSweep(SweepConfig{
			RPSLevels: []float64{15, 35},
			Opt:       PaperOptimizations(),
			Seed:      3,
			Warmup:    time.Second,
			Measure:   2 * time.Second,
			Workers:   workers,
		})
	}
	seqT, _ := measured(func() { sweep(1) })
	parT, _ := measured(func() { sweep(0) })
	out.SweepSeqSec = seqT.Seconds()
	out.SweepParSec = parT.Seconds()
	return out
}

// FormatEngine renders the E16 table.
func FormatEngine(b EngineBench) string {
	t := newTable("metric", "value")
	t.row("scheduler events", fmt.Sprint(b.SchedEvents))
	t.row("scheduler ns/event", fmt.Sprintf("%.1f", b.SchedNsPerOp))
	t.row("scheduler events/sec", fmt.Sprintf("%.2fM", 1e3/b.SchedNsPerOp))
	t.row("scheduler allocs/event", fmt.Sprintf("%.3f", b.SchedAllocsPer))
	t.row("packet-path packets", fmt.Sprint(b.PktPackets))
	t.row("packet-path ns/packet", fmt.Sprintf("%.1f", b.PktNsPerOp))
	t.row("packet-path allocs/packet", fmt.Sprintf("%.3f", b.PktAllocsPer))
	t.row("sweep wall-clock (sequential)", fmt.Sprintf("%.2fs", b.SweepSeqSec))
	t.row(fmt.Sprintf("sweep wall-clock (parallel=%d)", b.Parallelism), fmt.Sprintf("%.2fs", b.SweepParSec))
	if b.SweepParSec > 0 {
		t.row("sweep speedup", fmt.Sprintf("%.2fx", b.SweepSeqSec/b.SweepParSec))
	}
	return "E16 — simulation engine throughput (host-dependent; excluded from goldens)\n" + t.String()
}
