package meshlayer

import (
	"testing"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
)

// TestDegradedFallbackPropagation crashes every ratings replica and
// checks the reviews->ratings fallback serves the page, with the
// x-mesh-degraded provenance stamp carried back through reviews and
// frontend to the gateway (two app hops, same mechanism as the paper's
// priority header).
func TestDegradedFallbackPropagation(t *testing.T) {
	acfg := app.DefaultELibraryConfig()
	acfg.Zones = 3
	s := NewScenario(ScenarioConfig{Seed: 7, App: acfg})
	e := s.App
	cp := e.Mesh.ControlPlane()
	applyZoneDefenses(cp, 3)

	for _, rt := range e.AllRatings {
		rt.Partition(true)
		rt.Host().ResetConns()
	}

	var (
		gotResp *httpsim.Response
		gotErr  error
		fired   bool
	)
	e.Sched.After(100*time.Millisecond, func() {
		e.Gateway.Serve(app.NewProductRequest(), func(resp *httpsim.Response, err error) {
			gotResp, gotErr = resp, err
			fired = true
		})
	})
	e.Sched.RunFor(30 * time.Second)

	if !fired {
		t.Fatal("request never completed")
	}
	if gotErr != nil {
		t.Fatalf("expected degraded success, got error %v", gotErr)
	}
	if gotResp.Status != httpsim.StatusOK {
		t.Fatalf("status = %d, want 200", gotResp.Status)
	}
	if got := gotResp.Headers.Get(mesh.HeaderDegraded); got != "ratings" {
		t.Fatalf("%s = %q, want %q", mesh.HeaderDegraded, got, "ratings")
	}
	if n := e.Mesh.Metrics().CounterTotal("mesh_fallback_served_total"); n == 0 {
		t.Fatal("no fallback recorded")
	}
	if n := e.Mesh.Metrics().CounterTotal("gateway_degraded_total"); n != 1 {
		t.Fatalf("gateway_degraded_total = %d, want 1", n)
	}
}

// TestDegradedHeaderAbsentOnSuccess checks a healthy mesh serves with
// no provenance stamp and no fallback.
func TestDegradedHeaderAbsentOnSuccess(t *testing.T) {
	acfg := app.DefaultELibraryConfig()
	acfg.Zones = 3
	s := NewScenario(ScenarioConfig{Seed: 7, App: acfg})
	e := s.App
	applyZoneDefenses(e.Mesh.ControlPlane(), 3)

	var gotResp *httpsim.Response
	var gotErr error
	e.Sched.After(100*time.Millisecond, func() {
		e.Gateway.Serve(app.NewProductRequest(), func(resp *httpsim.Response, err error) {
			gotResp, gotErr = resp, err
		})
	})
	e.Sched.RunFor(10 * time.Second)

	if gotErr != nil || gotResp == nil || gotResp.Status != httpsim.StatusOK {
		t.Fatalf("healthy serve failed: resp=%v err=%v", gotResp, gotErr)
	}
	if got := gotResp.Headers.Get(mesh.HeaderDegraded); got != "" {
		t.Fatalf("unexpected degraded stamp %q", got)
	}
	if n := e.Mesh.Metrics().CounterTotal("gateway_degraded_total"); n != 0 {
		t.Fatalf("gateway_degraded_total = %d, want 0", n)
	}
}
