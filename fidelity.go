package meshlayer

import (
	"fmt"
	"sort"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// ---------- E20: engine throughput vs fidelity (hybrid fast path) ----------
//
// E20 measures what the flow-level fast path buys: the same bulk
// workload is simulated under packet, flow, and hybrid fidelity, and
// the cost is reported in *scheduler events* — a deterministic,
// host-independent unit (unlike E16's wall-clock numbers), so the
// whole table is golden-checkable. Two arms:
//
//   - Bulk ladder: 8 client/server pairs across a two-switch spine,
//     16 x 1 MB messages each. All three fidelities run at full scale;
//     flow/hybrid must deliver the same bytes at rate-accurate times
//     for >= 10x fewer events.
//   - 10k-pod fan-in: 100 zones x 100 pods, every zone's 99 senders
//     bulk-transfer to a zone collector. Flow and hybrid run at full
//     scale; packet mode runs at a reduced zone count and its
//     full-scale cost is reported as a linear projection — the point
//     being that packet fidelity cannot cover this topology in CI
//     time, and the fast path can.
//
// Fidelity is set per network here, so E20 is unaffected by (and can
// run under) the process-wide -fidelity flag.

// FidelityPoint is one bulk-ladder arm.
type FidelityPoint struct {
	Mode      string        // packet | flow | hybrid
	Steps     uint64        // scheduler events executed
	TotalMB   float64       // application bytes delivered
	EventsMB  float64       // Steps / TotalMB
	Done      time.Duration // simulated time of the last delivery
	MsgP50    time.Duration // per-message transfer time, median
	MsgP99    time.Duration // per-message transfer time, p99
	Delivered int           // messages delivered (must match sent)
	Fluid     uint64        // messages carried by the fluid fast path
	Demoted   uint64        // fluid flows demoted back to packets
	Speedup   float64       // packet events / this mode's events
}

// FidelityScalePoint is one fan-in sweep arm. A Projected row was not
// simulated: its Steps extrapolate a reduced-scale packet run linearly
// in delivered bytes.
type FidelityScalePoint struct {
	Mode      string
	Zones     int
	Pods      int
	Steps     uint64
	TotalMB   float64
	EventsMB  float64
	Done      time.Duration
	Delivered int
	Projected bool
}

// FidelityBench holds both E20 arms.
type FidelityBench struct {
	Bulk  []FidelityPoint
	Scale []FidelityScalePoint
}

// fidelityBulkOnce runs the bulk ladder under one fidelity: pairs
// client/server pairs on opposite sides of a two-switch spine, each
// sending msgs messages of msgBytes.
func fidelityBulkOnce(fid simnet.Fidelity, pairs, msgs, msgBytes int) FidelityPoint {
	s := simnet.NewScheduler()
	net := simnet.NewNetwork(s)
	net.SetFidelity(fid)
	sw1, sw2 := net.AddNode("sw1"), net.AddNode("sw2")
	net.Connect(sw1, sw2, simnet.LinkConfig{Rate: 10 * simnet.Gbps, Delay: 500 * time.Microsecond})
	edge := simnet.LinkConfig{Rate: 1 * simnet.Gbps, Delay: 200 * time.Microsecond}

	delivered := make([][]time.Duration, pairs)
	conns := make([]*transport.Conn, pairs)
	for i := 0; i < pairs; i++ {
		cn := net.AddNode(fmt.Sprintf("c%d", i))
		sn := net.AddNode(fmt.Sprintf("s%d", i))
		net.Connect(cn, sw1, edge)
		net.Connect(sn, sw2, edge)
		ch, sh := transport.NewHost(cn), transport.NewHost(sn)
		sh.Listen(80, func(c *transport.Conn) {
			c.SetOnMessage(func(any, int) {
				delivered[i] = append(delivered[i], s.Now())
			})
		})
		c := ch.Dial(sn.Addr(), 80, transport.Options{})
		for k := 0; k < msgs; k++ {
			c.SendMessage(k, msgBytes)
		}
		conns[i] = c
	}
	s.Run()

	p := FidelityPoint{
		Mode:    fid.String(),
		Steps:   s.Steps(),
		TotalMB: float64(pairs*msgs*msgBytes) / (1 << 20),
	}
	p.EventsMB = float64(p.Steps) / p.TotalMB
	var perMsg []time.Duration
	for i := range delivered {
		prev := time.Duration(0)
		for _, at := range delivered[i] {
			perMsg = append(perMsg, at-prev)
			prev = at
			if at > p.Done {
				p.Done = at
			}
		}
		p.Delivered += len(delivered[i])
	}
	sort.Slice(perMsg, func(a, b int) bool { return perMsg[a] < perMsg[b] })
	p.MsgP50, p.MsgP99 = durQuantile(perMsg, 0.50), durQuantile(perMsg, 0.99)
	for _, c := range conns {
		p.Fluid += c.FluidCompleted()
		p.Demoted += c.FluidDemotions()
	}
	return p
}

// fidelityScaleOnce runs the fan-in sweep under one fidelity: zones
// zones of podsPerZone pods each; pod 0 of every zone collects one
// bulk message from each of its zone-mates. Message sizes are
// staggered by sender index so completions spread out instead of
// collapsing into one simultaneous batch.
func fidelityScaleOnce(fid simnet.Fidelity, zones, podsPerZone int) FidelityScalePoint {
	s := simnet.NewScheduler()
	net := simnet.NewNetwork(s)
	net.SetFidelity(fid)
	cl := cluster.New(net)

	const baseBytes = 128 << 10
	const stepBytes = 2 << 10
	out := FidelityScalePoint{
		Mode:  fid.String(),
		Zones: zones,
		Pods:  zones * podsPerZone,
	}
	delivered := 0
	var last time.Duration
	var totalBytes int64
	for z := 0; z < zones; z++ {
		zone := fmt.Sprintf("z%03d", z)
		coll := cl.AddPod(cluster.PodSpec{Name: "coll-" + zone, Zone: zone})
		coll.Host().Listen(9000, func(c *transport.Conn) {
			c.SetOnMessage(func(any, int) {
				delivered++
				last = s.Now()
			})
		})
		for i := 1; i < podsPerZone; i++ {
			p := cl.AddPod(cluster.PodSpec{Name: fmt.Sprintf("send-%s-%d", zone, i), Zone: zone})
			size := baseBytes + i*stepBytes
			p.Host().Dial(coll.Addr(), 9000, transport.Options{}).SendMessage(i, size)
			totalBytes += int64(size)
		}
	}
	s.Run()

	out.Steps = s.Steps()
	out.TotalMB = float64(totalBytes) / (1 << 20)
	out.EventsMB = float64(out.Steps) / out.TotalMB
	out.Done = last
	out.Delivered = delivered
	return out
}

// RunFidelityBench runs both E20 arms across the fidelities. zones and
// podsPerZone size the fan-in sweep; <= 0 selects the full 100 x 100.
// Packet mode runs the fan-in at a fixed reduced zone count and is
// reported as a projection at full scale.
func RunFidelityBench(zones, podsPerZone int) FidelityBench {
	if zones <= 0 {
		zones = 100
	}
	if podsPerZone <= 0 {
		podsPerZone = 100
	}
	packetZones := 4
	if packetZones > zones {
		packetZones = zones
	}

	const pairs, msgs, msgBytes = 8, 16, 1 << 20
	var b FidelityBench
	b.Bulk = make([]FidelityPoint, 3)
	b.Scale = make([]FidelityScalePoint, 3, 4)
	fids := []simnet.Fidelity{simnet.FidelityPacket, simnet.FidelityFlow, simnet.FidelityHybrid}
	// Six independent sims: three bulk arms plus the packet-reduced,
	// flow, and hybrid fan-in arms. Fidelity is per-network state, so
	// they parallelize like any other sweep.
	runIndexed(6, func(k int) {
		if k < 3 {
			b.Bulk[k] = fidelityBulkOnce(fids[k], pairs, msgs, msgBytes)
			return
		}
		switch f := fids[k-3]; f {
		case simnet.FidelityPacket:
			b.Scale[k-3] = fidelityScaleOnce(f, packetZones, podsPerZone)
		default:
			b.Scale[k-3] = fidelityScaleOnce(f, zones, podsPerZone)
		}
	})
	for i := range b.Bulk {
		b.Bulk[i].Speedup = float64(b.Bulk[0].Steps) / float64(b.Bulk[i].Steps)
	}
	// Project the reduced packet run to full scale, linearly in bytes.
	if full := b.Scale[1]; b.Scale[0].Zones < full.Zones {
		proj := FidelityScalePoint{
			Mode:      "packet",
			Zones:     full.Zones,
			Pods:      full.Pods,
			TotalMB:   full.TotalMB,
			EventsMB:  b.Scale[0].EventsMB,
			Steps:     uint64(b.Scale[0].EventsMB * full.TotalMB),
			Projected: true,
		}
		b.Scale = append(b.Scale, proj)
	}
	return b
}

// durQuantile returns the q-quantile of an ascending slice.
func durQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// FormatFidelity renders the E20 tables.
func FormatFidelity(b FidelityBench) string {
	t := newTable("fidelity", "events", "events/MB", "speedup", "done",
		"msg p50", "msg p99", "delivered", "fluid", "demoted")
	for _, p := range b.Bulk {
		t.row(p.Mode, fmt.Sprint(p.Steps), fmt.Sprintf("%.0f", p.EventsMB),
			fmt.Sprintf("%.1fx", p.Speedup), ms(p.Done), ms(p.MsgP50), ms(p.MsgP99),
			fmt.Sprint(p.Delivered), fmt.Sprint(p.Fluid), fmt.Sprint(p.Demoted))
	}
	out := "E20 — engine throughput vs fidelity (deterministic event counts)\n"
	out += fmt.Sprintf("bulk ladder: 8 pairs x 16 x 1 MB over a shared spine (%.0f MB)\n", b.Bulk[0].TotalMB)
	out += t.String()

	t2 := newTable("fidelity", "zones", "pods", "events", "events/MB", "done", "delivered")
	for _, p := range b.Scale {
		mode, done, delivered := p.Mode, ms(p.Done), fmt.Sprint(p.Delivered)
		if p.Projected {
			mode += " (projected)"
			done, delivered = "-", "-"
		}
		t2.row(mode, fmt.Sprint(p.Zones), fmt.Sprint(p.Pods),
			fmt.Sprint(p.Steps), fmt.Sprintf("%.0f", p.EventsMB), done, delivered)
	}
	out += "\nfan-in sweep: per-zone 99->1 bulk collection; packet mode simulated at reduced scale, projected to full\n"
	out += t2.String()
	return out
}
