package meshlayer

import (
	"fmt"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/chaos"
	"meshlayer/internal/mesh"
)

// ---------- E17: zone-aware failover & graceful degradation ----------

// ZoneFailZones is the failure-domain count of the E17 topology: the
// Fig. 3 application replicated once per zone, joined at the spine.
const ZoneFailZones = 3

// ZoneFailRow is one defense configuration measured under the
// correlated-failure suite.
type ZoneFailRow struct {
	Config       string
	LSP50, LSP99 time.Duration
	LIP99        time.Duration
	// Avail is served/total over the whole measured window; OutageAvail
	// the same over the zone-a outage window only. Degraded-but-served
	// responses count as served (that is the point of degradation).
	Avail, OutageAvail float64
	// DegradedFrac is the fraction of served external responses that
	// carried the x-mesh-degraded provenance stamp.
	DegradedFrac float64
	Retries      uint64
	CrossZone    uint64
	Fallbacks    uint64
	Faults       bool
}

// applyZoneDefenses configures one rung of the E17 ladder:
// 0 = zone-blind, no defenses (single attempts, breaker off);
// 1 = zone-aware LB (strict locality), still no defenses;
// 2 = locality failover + the full E15 self-healing stack (retries,
// breakers, health checks, outlier detection, budgets + backoff);
// 3 = rung 2 + graceful degradation on the reviews -> ratings edge.
func applyZoneDefenses(cp *mesh.ControlPlane, rung int) {
	services := []string{"frontend", "details", "reviews", "ratings"}
	switch {
	case rung <= 0:
		applyChaosDefenses(cp, 0)
	case rung == 1:
		applyChaosDefenses(cp, 0)
		for _, svc := range services {
			cp.SetLocalityPolicy(svc, mesh.LocalityPolicy{Mode: mesh.LocalityStrict})
		}
	default:
		applyChaosDefenses(cp, 3)
		for _, svc := range services {
			cp.SetLocalityPolicy(svc, mesh.LocalityPolicy{Mode: mesh.LocalityFailover})
		}
		if rung >= 3 {
			// Reviews serves its page without the ratings column when
			// ratings is unreachable: a small degraded body instead of a
			// failed call tree. The 400 ms deadline sits above the ~330 ms
			// worst-case legitimate LI queueing (see applyChaosDefenses)
			// and below the callers' 1 s per-try timeouts.
			cp.SetFallbackPolicy("ratings", mesh.FallbackPolicy{
				Enabled: true, BodyBytes: 256, After: 400 * time.Millisecond,
			})
		}
	}
}

// zoneFailSuite is the scripted correlated-failure sequence E17 replays
// against every rung: the gateway's own zone goes dark for half the
// window (the 10 s outage at the default 20 s measure), a remote zone
// turns correlated-slow, another zone partitions at the spine, and
// finally every ratings replica crashes at once — the dependency-wide
// failure only graceful degradation survives. Returns the scenario and
// the outage window [start, end) for availability scoring.
func zoneFailSuite(seed int64, warmup, measure time.Duration) (chaos.Scenario, time.Duration, time.Duration) {
	w, m := warmup, measure
	outageAt, outageFor := w+m/10, m/2
	var ratingsCrash []chaos.Event
	for i := 0; i < ZoneFailZones; i++ {
		ratingsCrash = append(ratingsCrash, chaos.Event{
			At: w + 88*m/100, Duration: 8 * m / 100,
			Fault: chaos.PodCrash{Pod: "ratings-" + string(rune('a'+i))},
		})
	}
	_ = seed
	return chaos.Scenario{
		Name: "e17-suite",
		Events: append([]chaos.Event{
			{At: outageAt, Duration: outageFor, Fault: chaos.ZoneOutage{
				Zone: "zone-a", Except: []string{"gateway"},
			}},
			{At: w + 65*m/100, Duration: m / 10, Fault: chaos.SlowZone{Zone: "zone-b", Factor: 10}},
			{At: w + 78*m/100, Duration: 8 * m / 100, Fault: chaos.ZonePartition{Zone: "zone-c"}},
		}, ratingsCrash...),
	}, outageAt, outageAt + outageFor
}

// RunZoneFail measures the three-zone e-library under the correlated
// failure suite across the defense ladder, plus a fault-free baseline.
func RunZoneFail(seed int64, warmup, measure time.Duration) []ZoneFailRow {
	if warmup <= 0 {
		warmup = 2 * time.Second
	}
	if measure <= 0 {
		measure = 20 * time.Second
	}
	configs := []struct {
		name   string
		rung   int
		faults bool
	}{
		{"fault-free baseline", 3, false},
		{"no defenses (zone-blind)", 0, true},
		{"zone-aware LB (strict locality)", 1, true},
		{"+ locality failover + self-healing", 2, true},
		{"+ graceful degradation", 3, true},
	}
	out := make([]ZoneFailRow, len(configs))
	runIndexed(len(configs), func(i int) {
		c := configs[i]
		out[i] = runZoneFailOnce(c.name, c.rung, c.faults, seed, warmup, measure)
	})
	return out
}

func runZoneFailOnce(name string, rung int, withFaults bool, seed int64, warmup, measure time.Duration) ZoneFailRow {
	appCfg := app.DefaultELibraryConfig()
	appCfg.Zones = ZoneFailZones
	s := NewScenario(ScenarioConfig{Seed: seed, App: appCfg})
	e := s.App
	applyZoneDefenses(e.Mesh.ControlPlane(), rung)

	suite, outageFrom, outageTo := zoneFailSuite(seed, warmup, measure)
	if withFaults {
		eng := chaos.NewEngine(&chaos.Target{Sched: e.Sched, Cluster: e.Cluster, Mesh: e.Mesh})
		eng.Schedule(suite)
	}

	// One recorder per workload class; availability weights both classes
	// by their actual completions.
	lsRec := chaos.NewRecorder(measure / 40)
	liRec := chaos.NewRecorder(measure / 40)
	r := s.RunMixed(MixedConfig{
		RPS: 30, Seed: seed, Warmup: warmup, Measure: measure,
		LSObserver: lsRec.Observe, LIObserver: liRec.Observe,
	})

	avail := func(from, to time.Duration) float64 {
		ok1, fail1 := lsRec.Counts(from, to)
		ok2, fail2 := liRec.Counts(from, to)
		total := ok1 + ok2 + fail1 + fail2
		if total == 0 {
			return 1
		}
		return float64(ok1+ok2) / float64(total)
	}
	served := r.LS.Count + r.LI.Count
	degraded := e.Mesh.Metrics().CounterTotal("gateway_degraded_total")
	degFrac := 0.0
	if served > 0 {
		degFrac = float64(degraded) / float64(served)
	}
	return ZoneFailRow{
		Config:       name,
		LSP50:        r.LS.P50,
		LSP99:        r.LS.P99,
		LIP99:        r.LI.P99,
		Avail:        avail(warmup, warmup+measure),
		OutageAvail:  avail(outageFrom, outageTo),
		DegradedFrac: degFrac,
		Retries:      e.Mesh.Metrics().CounterTotal("mesh_retries_total"),
		CrossZone:    e.Mesh.Metrics().CounterTotal("mesh_lb_cross_zone_total"),
		Fallbacks:    e.Mesh.Metrics().CounterTotal("mesh_fallback_served_total"),
		Faults:       withFaults,
	}
}

// FormatZoneFail renders the E17 table.
func FormatZoneFail(rows []ZoneFailRow) string {
	t := newTable("configuration", "LS p50", "LS p99", "LI p99",
		"avail", "outage avail", "degraded", "retries", "x-zone", "fallbacks")
	for _, r := range rows {
		outage := "-"
		if r.Faults {
			outage = fmt.Sprintf("%.2f%%", 100*r.OutageAvail)
		}
		t.row(r.Config, ms(r.LSP50), ms(r.LSP99), ms(r.LIP99),
			fmt.Sprintf("%.2f%%", 100*r.Avail), outage,
			fmt.Sprintf("%.2f%%", 100*r.DegradedFrac),
			fmt.Sprint(r.Retries), fmt.Sprint(r.CrossZone), fmt.Sprint(r.Fallbacks))
	}
	return "E17 — correlated zone failures (outage, slow-zone, partition, dependency loss) vs zone-aware failover & degradation (3 zones, 30 RPS mixed)\n" + t.String()
}
