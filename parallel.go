package meshlayer

import (
	"runtime"
	"sync"
)

// MaxParallel bounds how many simulation runs the experiment sweeps
// execute concurrently. Every run in a sweep is an independent,
// single-threaded simulation — a pure function of its configuration and
// seed with no package-level state — so runs can proceed on separate
// goroutines while results land at their input index. Output is
// therefore byte-identical at any parallelism level; set to 1 (or run
// cmd/meshbench with -parallel 1) to force sequential execution.
var MaxParallel = runtime.GOMAXPROCS(0)

// runIndexed executes fn(0..n-1) on a bounded worker pool of up to
// MaxParallel goroutines and returns when all calls have finished. fn
// must write its result only to slots owned by index i — never to
// state shared across indices.
func runIndexed(n int, fn func(i int)) {
	runIndexedWorkers(n, MaxParallel, fn)
}

// runIndexedWorkers is runIndexed with an explicit worker bound, for
// callers that need a specific parallelism for one sweep (a sequential
// reference arm, say) without mutating the MaxParallel global out from
// under concurrent sweeps. workers <= 0 selects MaxParallel.
func runIndexedWorkers(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = MaxParallel
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
