package meshlayer

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"meshlayer/internal/simnet"
)

// Cross-validation of the hybrid fidelity mode: every experiment that
// feeds the repo's conclusions is rerun with the flow-level fast path
// armed, and its headline metrics must land within a stated tolerance
// of the packet-mode reference. The tolerances encode the fidelity
// contract documented in DESIGN.md ("Fidelity modes"): small RPCs are
// byte-exact in every mode (tight), bulk-transfer latencies are
// rate-accurate but not queue-accurate (loose), and availability is
// preserved because faults always demote to packets (absolute points).

// tol passes when |hybrid-packet| <= max(abs, rel*|packet|).
type tol struct{ rel, abs float64 }

var (
	tolTight = tol{0.10, 0.002} // RPC paths: hybrid leaves them on packets
	tolMed   = tol{0.40, 0.020} // mixed paths: some bulk sharing upstream
	tolLoose = tol{0.90, 0.100} // bulk-dominated tails: rate-accurate only
	tolFrac  = tol{0.00, 0.05}  // availability / shares: 5 points absolute
	tolRate  = tol{0.30, 0.00}  // goodput in Mbps
)

// indicator encodes a qualitative claim as a 0/1 metric: both
// fidelities must agree on it. Unmitigated-baseline queueing tails are
// asserted this way — their magnitude is congestion-window and
// head-of-line dynamics the fluid model deliberately abstracts away
// (DESIGN.md: rate-accurate, not queue-accurate), but the paper's
// ordering claim must survive in every mode.
func indicator(name string, claim bool) metric {
	v := 0.0
	if claim {
		v = 1
	}
	return metric{name, v, tolFrac}
}

type metric struct {
	name string
	val  float64
	t    tol
}

func m(name string, v float64, t tol) metric        { return metric{name, v, t} }
func md(name string, d time.Duration, t tol) metric { return metric{name, d.Seconds(), t} }

// crossCase is one experiment: run executes it under the process-wide
// default fidelity and distills the metrics under test. The same
// closure runs for both arms, so metric order is identical by
// construction and the comparison is positional.
type crossCase struct {
	name  string
	short bool // also runs under -short
	run   func() []metric
}

func crossCases() []crossCase {
	const seed = 5
	mixed := MixedConfig{Warmup: time.Second, Measure: 4 * time.Second}
	return []crossCase{
		{"E1-E3 fig4 sweep (RPS 30)", true, func() []metric {
			pts := RunSweep(SweepConfig{RPSLevels: []float64{30}, Opt: PaperOptimizations(),
				Seed: seed, Warmup: mixed.Warmup, Measure: mixed.Measure})
			p := pts[0]
			return []metric{
				indicator("base LS p99 >= 3x opt", p.Base.LS.P99 >= 3*p.Opt.LS.P99),
				md("opt LS p50", p.Opt.LS.P50, tolMed),
				md("opt LS p99", p.Opt.LS.P99, tolMed),
				md("opt LI p99", p.Opt.LI.P99, tolLoose),
			}
		}},
		{"E4 sidecar overhead", true, func() []metric {
			rows := RunSidecarOverhead(500, seed)
			last := rows[len(rows)-1]
			return []metric{
				md(last.Name+" p50", last.P50, tolTight),
				md(last.Name+" p99", last.P99, tolTight),
			}
		}},
		{"E5 ablation (RPS 30)", false, func() []metric {
			rows := RunAblation(30, seed, mixed)
			return []metric{
				indicator("baseline LS p99 >= 3x routing+tc", rows[0].LSP99 >= 3*rows[2].LSP99),
				md("routing+tc LS p50", rows[2].LSP50, tolMed),
				md("routing+tc LS p99", rows[2].LSP99, tolMed),
				md("routing+tc LI p99", rows[2].LIP99, tolLoose),
			}
		}},
		{"E6 scavenger", false, func() []metric {
			rows := RunScavenger(seed) // reno, cubic, lp, ledbat
			return []metric{
				md("ledbat LS p50", rows[3].LSP50, tolMed),
				m("ledbat bulk Mbps", rows[3].BulkMbps, tolRate),
				m("reno bulk Mbps", rows[0].BulkMbps, tolRate),
			}
		}},
		{"E7 adaptive LB", false, func() []metric {
			rows := RunAdaptiveLB(50, seed) // rr, random, least-request, ewma
			return []metric{
				md("ewma p50", rows[3].P50, tolTight),
				md("ewma p99", rows[3].P99, tolMed),
				m("ewma slow share", rows[3].SlowShare, tolFrac),
			}
		}},
		{"E8 redundant requests", false, func() []metric {
			rows := RunRedundant(30, seed)
			return []metric{
				md("hedged p50", rows[1].P50, tolMed),
				md("hedged p99", rows[1].P99, tolMed),
			}
		}},
		{"E9 hop depth", false, func() []metric {
			rows := RunHopDepth(nil, 300, seed)
			last := rows[len(rows)-1]
			return []metric{
				md(fmt.Sprintf("depth %d p50", last.Depth), last.P50, tolMed),
				md("per-hop", last.PerHop, tolMed),
			}
		}},
		{"E10 bottleneck 1 Gbps", false, func() []metric {
			rows := RunBottleneckSweep([]float64{1}, seed, mixed)
			return []metric{
				indicator("base LS p99 >= 2x opt", rows[0].BaseP99 >= 2*rows[0].OptP99),
				md("opt LS p99", rows[0].OptP99, tolMed),
			}
		}},
		{"E11 skew 1 MB", false, func() []metric {
			rows := RunSkewSweep([]float64{1}, seed, mixed)
			return []metric{
				indicator("base LS p99 >= 2x opt", rows[0].BaseP99 >= 2*rows[0].OptP99),
				md("opt LS p99", rows[0].OptP99, tolMed),
			}
		}},
		{"E12 resilience", false, func() []metric {
			rows := RunResilience(30, seed)
			var out []metric
			for _, r := range rows {
				if r.Phase != "during partition" {
					continue
				}
				out = append(out,
					m(r.Config+" error rate", r.ErrorRate, tolFrac),
					md(r.Config+" p99", r.P99, tolLoose))
			}
			return out
		}},
		{"E13 qdisc comparison", true, func() []metric {
			rows := RunQdiscComparison(40, seed, mixed) // fifo, red, codel, priority
			last := rows[len(rows)-1]
			return []metric{
				md("fifo LS p99", rows[0].LSP99, tolLoose),
				md("fifo LI p99", rows[0].LIP99, tolLoose),
				md(last.Name+" LS p99", last.LSP99, tolMed),
			}
		}},
		{"E17 zone failure", true, func() []metric {
			rows := RunZoneFail(seed, time.Second, 4*time.Second)
			last := rows[len(rows)-1]
			return []metric{
				m(last.Config+" avail", last.Avail, tolFrac),
				m(last.Config+" outage avail", last.OutageAvail, tolFrac),
				md(last.Config+" LS p99", last.LSP99, tolLoose),
			}
		}},
		{"E19 federation", false, func() []metric {
			rows := RunFederation(seed, time.Second, 4*time.Second)
			last := rows[len(rows)-1]
			return []metric{
				m(last.Config+" avail", last.Avail, tolFrac),
				m(last.Config+" partition avail", last.PartAvail, tolFrac),
				md(last.Config+" LS p50", last.LSP50, tolLoose),
			}
		}},
	}
}

// TestHybridCrossValidation reruns the experiment suite under hybrid
// fidelity and asserts every headline metric against its packet-mode
// reference. Failures print a per-metric diff table.
func TestHybridCrossValidation(t *testing.T) {
	defer simnet.SetDefaultFidelity(simnet.FidelityPacket)
	for _, c := range crossCases() {
		if testing.Short() && !c.short {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			simnet.SetDefaultFidelity(simnet.FidelityPacket)
			ref := c.run()
			simnet.SetDefaultFidelity(simnet.FidelityHybrid)
			got := c.run()
			if len(got) != len(ref) {
				t.Fatalf("metric count changed across fidelities: %d vs %d", len(ref), len(got))
			}
			var b strings.Builder
			failed := false
			fmt.Fprintf(&b, "%-34s %12s %12s %10s %10s  %s\n",
				"metric", "packet", "hybrid", "diff", "allowed", "ok")
			for i, r := range ref {
				h := got[i]
				if h.name != r.name {
					t.Fatalf("metric %d renamed across fidelities: %q vs %q", i, r.name, h.name)
				}
				allowed := math.Max(r.t.abs, r.t.rel*math.Abs(r.val))
				diff := math.Abs(h.val - r.val)
				ok := diff <= allowed
				if !ok {
					failed = true
				}
				fmt.Fprintf(&b, "%-34s %12.6g %12.6g %10.4g %10.4g  %v\n",
					r.name, r.val, h.val, diff, allowed, ok)
			}
			if failed {
				t.Errorf("hybrid fidelity outside tolerance:\n%s", b.String())
			} else {
				t.Logf("\n%s", b.String())
			}
		})
	}
}
