package meshlayer

import (
	"testing"
	"time"

	"meshlayer/internal/lint/leakcheck"
)

// Short windows keep the simulated runs affordable under -race;
// cmd/meshbench -exp zonefail is the paper-scale version. The outage
// spans half the measured window, so even at test scale the zone is
// dark for 2 s.
const (
	zoneFailTestWarmup  = 2 * time.Second
	zoneFailTestMeasure = 4 * time.Second
)

// TestZoneFailLadderOrdering is E17's headline claim at test scale:
// during a zone-a outage the undefended mesh measurably collapses,
// strict locality collapses completely (it pins to the dead local
// zone), and locality failover with the self-healing stack sustains
// availability through the outage window.
func TestZoneFailLadderOrdering(t *testing.T) {
	leakcheck.Check(t)
	undefended := runZoneFailOnce("undefended", 0, true, 1, zoneFailTestWarmup, zoneFailTestMeasure)
	strict := runZoneFailOnce("strict", 1, true, 1, zoneFailTestWarmup, zoneFailTestMeasure)
	failover := runZoneFailOnce("failover", 2, true, 1, zoneFailTestWarmup, zoneFailTestMeasure)
	degraded := runZoneFailOnce("degraded", 3, true, 1, zoneFailTestWarmup, zoneFailTestMeasure)

	if undefended.OutageAvail >= 0.9 {
		t.Fatalf("undefended outage availability = %.1f%%, want measurable collapse", 100*undefended.OutageAvail)
	}
	if strict.OutageAvail >= undefended.OutageAvail {
		t.Fatalf("strict locality outage availability %.1f%% not worse than zone-blind %.1f%% (pinning to the dead zone must hurt)",
			100*strict.OutageAvail, 100*undefended.OutageAvail)
	}
	// The acceptance bar: the full ladder holds >= 99% through the
	// outage, counting degraded-but-served responses as served.
	if failover.OutageAvail < 0.99 {
		t.Fatalf("failover outage availability = %.2f%%, want >= 99%%", 100*failover.OutageAvail)
	}
	if degraded.OutageAvail < 0.99 {
		t.Fatalf("degraded outage availability = %.2f%%, want >= 99%%", 100*degraded.OutageAvail)
	}
	if failover.CrossZone == 0 {
		t.Fatal("failover run recorded no cross-zone selections")
	}
}

// TestZoneFailDegradationServesFallbacks: the full rung must actually
// exercise graceful degradation (the suite crashes every ratings
// replica at once) and stamp provenance at the edge.
func TestZoneFailDegradationServesFallbacks(t *testing.T) {
	leakcheck.Check(t)
	row := runZoneFailOnce("degraded", 3, true, 1, zoneFailTestWarmup, zoneFailTestMeasure)
	if row.Fallbacks == 0 {
		t.Fatal("no fallback responses served under the dependency-wide ratings loss")
	}
	if row.DegradedFrac <= 0 {
		t.Fatal("no degraded responses observed at the gateway (provenance lost)")
	}
}

// TestZoneFailFaultFreeOverheadFree: with zones and the full defense
// ladder but no faults, nothing degrades and nothing crosses zones.
func TestZoneFailFaultFreeOverheadFree(t *testing.T) {
	leakcheck.Check(t)
	row := runZoneFailOnce("baseline", 3, false, 1, zoneFailTestWarmup, zoneFailTestMeasure)
	if row.Avail < 0.999 {
		t.Fatalf("fault-free availability = %.2f%%", 100*row.Avail)
	}
	if row.Fallbacks != 0 || row.DegradedFrac != 0 {
		t.Fatalf("fault-free run served %d fallbacks (%.2f%% degraded)", row.Fallbacks, 100*row.DegradedFrac)
	}
	if row.CrossZone != 0 {
		t.Fatalf("fault-free run crossed zones %d times with all-healthy locality", row.CrossZone)
	}
}

// TestZoneFailDeterministic: equal seeds reproduce the scenario
// byte-for-byte.
func TestZoneFailDeterministic(t *testing.T) {
	leakcheck.Check(t)
	a := runZoneFailOnce("run", 3, true, 9, zoneFailTestWarmup, zoneFailTestMeasure)
	b := runZoneFailOnce("run", 3, true, 9, zoneFailTestWarmup, zoneFailTestMeasure)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if FormatZoneFail([]ZoneFailRow{a}) != FormatZoneFail([]ZoneFailRow{b}) {
		t.Fatal("formatted output diverged")
	}
}
