// Scavenger transport demo (§4.2 optimization 3b in isolation): a bulk
// flow shares a 100 Mbps bottleneck with periodic 100 KB transfers.
// When the bulk flow runs LEDBAT or TCP-LP instead of Reno/CUBIC, the
// short transfers' completion times collapse while the bulk flow still
// consumes the whole link when it is alone.
//
//	go run ./examples/scavenger
package main

import (
	"fmt"

	"meshlayer"
)

func main() {
	fmt.Println("bulk flow vs periodic 100KB transfers on a shared 100 Mbps bottleneck")
	fmt.Println("(the bulk flow's congestion controller varies per row)")
	fmt.Println()
	rows := meshlayer.RunScavenger(1)
	fmt.Println(meshlayer.FormatScavenger(rows))

	// Highlight the headline comparison.
	var reno, ledbat *meshlayer.ScavengerRow
	for i := range rows {
		switch rows[i].CC {
		case "reno":
			reno = &rows[i]
		case "ledbat":
			ledbat = &rows[i]
		}
	}
	if reno != nil && ledbat != nil && ledbat.LSP99 > 0 {
		fmt.Printf("short-transfer p99 FCT: reno %v -> ledbat %v (%.1fx better)\n",
			reno.LSP99, ledbat.LSP99, float64(reno.LSP99)/float64(ledbat.LSP99))
	}
}
