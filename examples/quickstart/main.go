// Quickstart: build the paper's e-library testbed with cross-layer
// prioritization enabled, serve one request of each class, and print
// the distributed call trees the mesh collected.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"meshlayer"
)

func main() {
	// The paper's prototype configuration: priority routing (3a) plus
	// nearly-strict TC prioritization at the virtual NICs (3c).
	s := meshlayer.NewScenario(meshlayer.ScenarioConfig{
		Opt:  meshlayer.PaperOptimizations(),
		Seed: 1,
	})

	fmt.Println("serving one request of each class through the mesh...")
	report := func(name string) func(time.Duration, int, error) {
		return func(lat time.Duration, status int, err error) {
			if err != nil {
				fmt.Printf("  %s -> error: %v\n", name, err)
				return
			}
			fmt.Printf("  %s -> %d in %v\n", name, status, lat)
		}
	}
	// One latency-sensitive page view and one batch analytics scan.
	s.Serve(meshlayer.ProductRequest, report("product   (latency-sensitive)  "))
	s.Serve(meshlayer.AnalyticsRequest, report("analytics (latency-insensitive)"))
	s.Run()

	fmt.Println("\ndistributed traces (provenance carried end to end):")
	for _, tree := range s.TraceTrees() {
		fmt.Println(tree)
	}
}
