// Social-network DAG + visibility tour (§3.2): build a 13-service
// DeathStarBench-flavoured application, drive load, then use the mesh's
// distributed tracing to find the slowest requests and decompose their
// latency along the critical path — root-cause analysis from passive
// observation alone.
//
//	go run ./examples/social
package main

import (
	"fmt"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/trace"
	"meshlayer/internal/workload"
)

func main() {
	d, err := app.BuildDAG(app.SocialNetworkSpec())
	if err != nil {
		panic(err)
	}
	fmt.Printf("social network: %d pods across %d services\n",
		len(d.Cluster.Pods()), len(d.Cluster.Services()))

	g := workload.Start(d.Sched, d.Gateway, workload.Spec{
		Name: "compose", Rate: 100, Seed: 7,
		NewRequest: d.NewDAGRequest,
		Warmup:     time.Second, Measure: 10 * time.Second, Cooldown: time.Second,
	})
	d.Sched.RunFor(13 * time.Second)
	r := g.Results()
	fmt.Printf("drove %d requests: p50=%v p99=%v errors=%d\n\n", r.Measured, r.P50(), r.P99(), r.Errors)

	tracer := d.Mesh.Tracer()
	fmt.Println("slowest requests and where their time went:")
	for _, id := range tracer.SlowestTraces(3) {
		tree := tracer.Tree(id)
		fmt.Printf("\n%s (total %v)\n", id, tree.Span.Duration())
		fmt.Print(trace.FormatCriticalPath(trace.CriticalPath(tree)))
	}

	fmt.Println("\nbusiest services by total span time:")
	totals := tracer.ServiceTotals()
	for _, svc := range []string{"compose", "home-timeline", "post-storage", "graph-db", "post-db"} {
		t := totals[svc]
		fmt.Printf("  %-15s spans=%-6d busy=%v\n", svc, t.Spans, t.TotalTime)
	}
}
