// E-library under mixed load: the paper's §4.3 experiment at one load
// level, baseline vs cross-layer prioritization, side by side.
//
//	go run ./examples/elibrary
package main

import (
	"fmt"
	"time"

	"meshlayer"
)

func main() {
	const rps = 40
	mixed := meshlayer.MixedConfig{
		RPS:     rps,
		Seed:    7,
		Warmup:  2 * time.Second,
		Measure: 15 * time.Second,
	}

	fmt.Printf("mixed workload: %d RPS latency-sensitive + %d RPS analytics (responses ~200x larger)\n", rps, rps)
	fmt.Println("bottleneck: 1 Gbps between reviews and ratings")
	fmt.Println()

	base := meshlayer.RunMixedOnce(meshlayer.None(), mixed)
	opt := meshlayer.RunMixedOnce(meshlayer.PaperOptimizations(), mixed)

	show := func(name string, r meshlayer.MixedResult) {
		fmt.Printf("%-28s LS p50=%-10v p99=%-10v | LI p50=%-10v p99=%v\n",
			name, r.LS.P50, r.LS.P99, r.LI.P50, r.LI.P99)
	}
	show("baseline", base)
	show("with cross-layer priority", opt)

	fmt.Printf("\nlatency-sensitive improvement: p50 %.2fx, p99 %.2fx\n",
		float64(base.LS.P50)/float64(opt.LS.P50),
		float64(base.LS.P99)/float64(opt.LS.P99))
	fmt.Printf("latency-insensitive p99 change: %+.1f%%\n",
		100*(float64(opt.LI.P99)/float64(base.LI.P99)-1))
}
