// Adaptive replica selection demo (§3.4): one of three replicas is
// degraded; latency-aware (EWMA) load balancing routes around it where
// round robin keeps feeding it.
//
//	go run ./examples/adaptive-lb
package main

import (
	"fmt"

	"meshlayer"
)

func main() {
	fmt.Println("three replicas, one degraded (25ms vs 2ms service time), 50 RPS")
	fmt.Println()
	rows := meshlayer.RunAdaptiveLB(50, 1)
	fmt.Println(meshlayer.FormatAdaptiveLB(rows))
	fmt.Println("slow-replica share near 1/3 means the policy is blind to latency;")
	fmt.Println("EWMA drives it toward zero, cutting the latency tail.")
}
