// Chaos / resilience tour (advanced example, using the internal mesh
// API directly): fault injection, circuit breaking, request hedging,
// rate limiting, and traffic mirroring on the e-commerce app.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/workload"
)

func main() {
	fmt.Println("e-commerce app: storefront -> {catalog, recs -> db, cart -> db}")

	// --- 1. Baseline ---
	fmt.Println("\n[1] baseline")
	run(nil)

	// --- 2. Fault injection: 10% aborts on catalog ---
	fmt.Println("\n[2] inject 10% aborts into catalog calls (retries mask most)")
	run(func(cp *mesh.ControlPlane) {
		cp.SetFaultPolicy("catalog", mesh.FaultPolicy{AbortProb: 0.1, AbortStatus: httpsim.StatusInternalServerError})
	})

	// --- 3. Injected delay + hedging ---
	fmt.Println("\n[3] inject 50ms delay into 10% of recs calls, then hedge after 10ms")
	run(func(cp *mesh.ControlPlane) {
		cp.SetFaultPolicy("recs", mesh.FaultPolicy{DelayProb: 0.1, Delay: 50 * time.Millisecond})
		cp.SetHedgePolicy("recs", mesh.HedgePolicy{Delay: 10 * time.Millisecond})
	})

	// --- 4. Rate limiting the db ---
	fmt.Println("\n[4] rate-limit db to 30 RPS (callers absorb the 429s; telemetry shows them)")
	{
		ec := app.BuildECommerce(app.ECommerceConfig{Seed: 42})
		ec.Mesh.ControlPlane().SetRateLimit("db", mesh.RateLimitPolicy{RPS: 30, Burst: 5})
		r := drive(ec)
		limited := ec.Mesh.Metrics().Counter(mesh.MetricRequestsTotal,
			map[string]string{"service": "db", "direction": "inbound", "code": "429"}).Value()
		fmt.Printf("    measured=%d p99=%v, db rejections (429): %d\n", r.Measured, r.P99(), limited)
	}

	// --- 5. Mirroring ---
	fmt.Println("\n[5] mirror 50% of catalog traffic to a shadow deployment")
	ec := app.BuildECommerce(app.ECommerceConfig{Seed: 42})
	shadow := ec.Cluster.AddPod(cluster.PodSpec{Name: "catalog-shadow", Labels: map[string]string{"app": "catalog-shadow"}})
	ec.Cluster.AddService("catalog-shadow", 9080, map[string]string{"app": "catalog-shadow"})
	seen := 0
	sc := ec.Mesh.InjectSidecar(shadow)
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		seen++
		respond(httpsim.NewResponse(httpsim.StatusOK))
	})
	ec.Mesh.ControlPlane().SetMirrorPolicy("catalog", mesh.MirrorPolicy{To: "catalog-shadow", Fraction: 0.5})
	res := drive(ec)
	fmt.Printf("    primary: %v p99, shadow copies served: %d\n", res.P99(), seen)
}

// run builds a fresh app, applies the policy tweak, and reports.
func run(mutate func(*mesh.ControlPlane)) {
	ec := app.BuildECommerce(app.ECommerceConfig{Seed: 42})
	if mutate != nil {
		mutate(ec.Mesh.ControlPlane())
	}
	r := drive(ec)
	fmt.Printf("    measured=%d errors=%d p50=%v p99=%v\n", r.Measured, r.Errors, r.P50(), r.P99())
}

func drive(ec *app.ECommerce) *workload.Results {
	g := workload.Start(ec.Sched, ec.Gateway, workload.Spec{
		Name: "store", Rate: 40, Seed: 11,
		NewRequest: app.NewStorefrontRequest,
		Warmup:     time.Second, Measure: 10 * time.Second, Cooldown: time.Second,
	})
	ec.Sched.RunFor(13 * time.Second)
	return g.Results()
}
