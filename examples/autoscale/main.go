// Autoscaling demo: a load surge hits a one-replica service; the
// HPA-style controller scales it out and the latency timeline shows the
// tail recovering. (An orchestration-layer capability the mesh's
// telemetry makes possible.)
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/autoscale"
	"meshlayer/internal/workload"
)

func main() {
	d, err := app.BuildDAG(app.DAGSpec{
		Entry: "api",
		Services: []app.ServiceSpec{{
			Name: "api", Replicas: 1, Workers: 4,
			ServiceTime: 20 * time.Millisecond, ResponseBytes: 4 << 10,
		}},
	})
	if err != nil {
		panic(err)
	}

	ctrl := autoscale.New(autoscale.Config{
		Cluster:  d.Cluster,
		Scaler:   d,
		Targets:  []autoscale.Target{{Service: "api", Min: 1, Max: 8, Utilization: 0.6}},
		Interval: 2 * time.Second,
	})
	ctrl.Start()

	tl := workload.NewTimeline(0, 2*time.Second)
	workload.Start(d.Sched, d.Gateway, workload.Spec{
		Name: "surge", Rate: 500, Seed: 9,
		NewRequest: d.NewDAGRequest,
		Warmup:     time.Second, Measure: 28 * time.Second, Cooldown: time.Second,
		OnComplete: tl.Observer(),
	})

	fmt.Println("500 RPS against one replica (capacity ~200 RPS); autoscaler target 60% utilization")
	fmt.Println("\n  t      replicas  p50        p99        errors")
	for step := 0; step < 15; step++ {
		d.Sched.RunFor(2 * time.Second)
		pts := tl.Points()
		var last workload.Point
		if len(pts) > 0 {
			last = pts[len(pts)-1]
		}
		fmt.Printf("  %-6v %-9d %-10v %-10v %d\n",
			d.Sched.Now().Truncate(time.Second), d.ReadyReplicas("api"), last.P50, last.P99, last.Errors)
	}
	fmt.Printf("\nscale-ups: %d, final replicas: %d\n", ctrl.ScaleUps(), d.ReadyReplicas("api"))
}
