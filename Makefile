# Developer entry points. CI (.github/workflows/ci.yml) runs `make check`.

.PHONY: check build vet lint test race bench bench-json chaos-smoke ctrlplane-smoke federation-smoke hybrid-smoke ctrlscale-smoke

check: build vet lint test chaos-smoke ctrlplane-smoke federation-smoke hybrid-smoke ctrlscale-smoke

build:
	go build ./...

vet:
	go vet ./...

# meshvet (cmd/meshvet, internal/lint) machine-checks the simulator's
# invariants — ten analyzers sharing a cross-package fact store: no
# wall clock or global randomness in sim code, no order-dependent
# range-over-map, no pooled-value retention, index-owned writes in
# parallel sweeps, no routing-state mutation outside the control-plane
# push path, x-mesh-* headers only through the internal/mesh registry,
# FlowEngine scratch/pool/timer hygiene, metric names as registered
# constants, and single-owner simnet.Timer discipline.
# `go run ./cmd/meshvet -doc` prints each analyzer's documentation;
# -json/-github emit machine-readable reports, -fix applies the
# headerreg literal -> constant rewrites.
lint:
	go run ./cmd/meshvet ./...

test:
	go test -race -timeout 30m ./...

# Short-mode suite under the race detector: the quick leg that
# complements the indexowned analyzer (static ownership proofs) with
# runtime interleaving checks. The explicit legs pin the PR 8 fluid
# fast path: the full flow-engine suite (not just short mode) and the
# hybrid cross-validation harness both replay under -race.
race:
	go test -race -short -timeout 10m ./...
	go test -race -timeout 10m -run 'Flow|Fluid|Hybrid' ./internal/simnet
	go test -race -short -timeout 10m -run TestHybridCrossValidation .

bench:
	go test -bench=. -benchtime=1x -run=^$$ .

# Engine benchmarks as a machine-readable artifact (see EXPERIMENTS.md,
# E16). Full benchtime for stable numbers; CI runs a 1x smoke instead.
# E17's availability ladder and E18's propagation sweep ship alongside
# it: each iteration simulates a full suite, so 3x suffices.
bench-json:
	go test ./internal/simnet -run '^$$' -bench 'Scheduler|PacketPath' -benchmem | go run ./cmd/benchjson > BENCH_engine.json
	@echo "wrote BENCH_engine.json"
	go test . -run '^$$' -bench 'ZoneFail' -benchtime 3x | go run ./cmd/benchjson > BENCH_zonefail.json
	@echo "wrote BENCH_zonefail.json"
	go test . -run '^$$' -bench 'CtrlPlane|CtrlScale' -benchtime 3x | go run ./cmd/benchjson > BENCH_ctrlplane.json
	@echo "wrote BENCH_ctrlplane.json"
	go test . -run '^$$' -bench 'Federation' -benchtime 3x | go run ./cmd/benchjson > BENCH_federation.json
	@echo "wrote BENCH_federation.json"

# Determinism golden check: the same seed must reproduce the E15 chaos
# and E17 zone-failure runs byte-for-byte — including with the parallel
# sweep pool disabled, which pins the parallel == sequential property.
chaos-smoke:
	@a=$$(mktemp) && b=$$(mktemp) && c=$$(mktemp) && \
	go run ./cmd/meshbench -exp chaos -warmup 1s -measure 4s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp chaos -warmup 1s -measure 4s -seed 7 > $$b && \
	go run ./cmd/meshbench -exp chaos -warmup 1s -measure 4s -seed 7 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "chaos-smoke: chaos deterministic (parallel == sequential)" && \
	go run ./cmd/meshbench -exp zonefail -warmup 1s -measure 4s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp zonefail -warmup 1s -measure 4s -seed 7 > $$b && \
	go run ./cmd/meshbench -exp zonefail -warmup 1s -measure 4s -seed 7 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "chaos-smoke: zonefail deterministic (parallel == sequential)" ; \
	rc=$$? ; rm -f $$a $$b $$c ; exit $$rc

# Same golden property for E18: push scheduling, debounce timers, and
# simulated xDS traffic must replay byte-for-byte at any -parallel.
ctrlplane-smoke:
	@a=$$(mktemp) && b=$$(mktemp) && c=$$(mktemp) && \
	go run ./cmd/meshbench -exp ctrlplane -warmup 1s -measure 4s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp ctrlplane -warmup 1s -measure 4s -seed 7 > $$b && \
	go run ./cmd/meshbench -exp ctrlplane -warmup 1s -measure 4s -seed 7 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "ctrlplane-smoke: ctrlplane deterministic (parallel == sequential)" ; \
	rc=$$? ; rm -f $$a $$b $$c ; exit $$rc

# Same golden property for E19: WAN chaos, per-region control planes,
# summary exchange, and gateway routing must replay byte-for-byte.
federation-smoke:
	@a=$$(mktemp) && b=$$(mktemp) && c=$$(mktemp) && \
	go run ./cmd/meshbench -exp federation -warmup 1s -measure 4s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp federation -warmup 1s -measure 4s -seed 7 > $$b && \
	go run ./cmd/meshbench -exp federation -warmup 1s -measure 4s -seed 7 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "federation-smoke: federation deterministic (parallel == sequential)" ; \
	rc=$$? ; rm -f $$a $$b $$c ; exit $$rc

# Same golden property for E21 at its smoke scale (1000 subscribers):
# crash/recovery epochs, backoff jitter, admission queues, and the
# convergence probe must replay byte-for-byte at any -parallel.
ctrlscale-smoke:
	@a=$$(mktemp) && b=$$(mktemp) && c=$$(mktemp) && \
	go run ./cmd/meshbench -exp ctrlscale -subs 1000 -warmup 1s -measure 12s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp ctrlscale -subs 1000 -warmup 1s -measure 12s -seed 7 > $$b && \
	go run ./cmd/meshbench -exp ctrlscale -subs 1000 -warmup 1s -measure 12s -seed 7 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "ctrlscale-smoke: ctrlscale deterministic (parallel == sequential)" ; \
	rc=$$? ; rm -f $$a $$b $$c ; exit $$rc

# Determinism golden for the fluid fast path (E20 and -fidelity): the
# fidelity ladder and a full chaos run under flow and hybrid fidelity
# must replay byte-for-byte — including with the sweep pool disabled,
# which pins parallel == sequential for the flow-event scheduler too.
hybrid-smoke:
	@a=$$(mktemp) && b=$$(mktemp) && c=$$(mktemp) && \
	go run ./cmd/meshbench -exp fidelity -zones 20 > $$a && \
	go run ./cmd/meshbench -exp fidelity -zones 20 > $$b && \
	go run ./cmd/meshbench -exp fidelity -zones 20 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "hybrid-smoke: E20 deterministic (parallel == sequential)" && \
	go run ./cmd/meshbench -exp chaos -fidelity flow -warmup 1s -measure 4s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp chaos -fidelity flow -warmup 1s -measure 4s -seed 7 > $$b && \
	go run ./cmd/meshbench -exp chaos -fidelity flow -warmup 1s -measure 4s -seed 7 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "hybrid-smoke: chaos deterministic under flow fidelity" && \
	go run ./cmd/meshbench -exp chaos -fidelity hybrid -warmup 1s -measure 4s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp chaos -fidelity hybrid -warmup 1s -measure 4s -seed 7 > $$b && \
	go run ./cmd/meshbench -exp chaos -fidelity hybrid -warmup 1s -measure 4s -seed 7 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "hybrid-smoke: chaos deterministic under hybrid fidelity" ; \
	rc=$$? ; rm -f $$a $$b $$c ; exit $$rc
