# Developer entry points. CI (.github/workflows/ci.yml) runs `make check`.

.PHONY: check build vet test bench chaos-smoke

check: build vet test chaos-smoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -race -timeout 30m ./...

bench:
	go test -bench=. -benchtime=1x -run=^$$ .

# Determinism golden check: the same seed must reproduce the E15 chaos
# run byte-for-byte.
chaos-smoke:
	@a=$$(mktemp) && b=$$(mktemp) && \
	go run ./cmd/meshbench -exp chaos -warmup 1s -measure 4s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp chaos -warmup 1s -measure 4s -seed 7 > $$b && \
	cmp $$a $$b && echo "chaos-smoke: deterministic" ; \
	rc=$$? ; rm -f $$a $$b ; exit $$rc
