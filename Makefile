# Developer entry points. CI (.github/workflows/ci.yml) runs `make check`.

.PHONY: check build vet test bench

check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchtime=1x -run=^$$ .
