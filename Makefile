# Developer entry points. CI (.github/workflows/ci.yml) runs `make check`.

.PHONY: check build vet test bench bench-json chaos-smoke

check: build vet test chaos-smoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -race -timeout 30m ./...

bench:
	go test -bench=. -benchtime=1x -run=^$$ .

# Engine benchmarks as a machine-readable artifact (see EXPERIMENTS.md,
# E16). Full benchtime for stable numbers; CI runs a 1x smoke instead.
bench-json:
	go test ./internal/simnet -run '^$$' -bench 'Scheduler|PacketPath' -benchmem | go run ./cmd/benchjson > BENCH_engine.json
	@echo "wrote BENCH_engine.json"

# Determinism golden check: the same seed must reproduce the E15 chaos
# run byte-for-byte — including with the parallel sweep pool disabled,
# which pins the parallel == sequential output property.
chaos-smoke:
	@a=$$(mktemp) && b=$$(mktemp) && c=$$(mktemp) && \
	go run ./cmd/meshbench -exp chaos -warmup 1s -measure 4s -seed 7 > $$a && \
	go run ./cmd/meshbench -exp chaos -warmup 1s -measure 4s -seed 7 > $$b && \
	go run ./cmd/meshbench -exp chaos -warmup 1s -measure 4s -seed 7 -parallel 1 > $$c && \
	cmp $$a $$b && cmp $$a $$c && echo "chaos-smoke: deterministic (parallel == sequential)" ; \
	rc=$$? ; rm -f $$a $$b $$c ; exit $$rc
