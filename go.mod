module meshlayer

go 1.22
