package meshlayer

import (
	"fmt"
	"strings"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/asciiplot"
	"meshlayer/internal/chaos"
	"meshlayer/internal/cluster"
	"meshlayer/internal/hdr"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
	"meshlayer/internal/tc"
	"meshlayer/internal/transport"
	"meshlayer/internal/workload"
)

// This file contains one runner per experiment in DESIGN.md's index.
// Each returns typed rows plus has a Format* companion that renders
// the table cmd/meshbench prints (and EXPERIMENTS.md records).

// ---------- E1/E2/E3: Fig. 4 sweep ----------

// SweepPoint is one RPS level measured with and without cross-layer
// optimization.
type SweepPoint struct {
	RPS       float64
	Base, Opt MixedResult
}

// SweepConfig parameterizes RunSweep.
type SweepConfig struct {
	// RPSLevels are the per-workload arrival rates (paper: 10..50).
	RPSLevels []float64
	// Opt is the optimization set compared against baseline.
	Opt Optimization
	// Seed and the window sizes are shared across levels.
	Seed                      int64
	Warmup, Measure, Cooldown time.Duration
	// Workers bounds this sweep's run concurrency; 0 means MaxParallel,
	// 1 forces sequential execution. Output is identical either way.
	Workers int
}

// DefaultSweepConfig mirrors Fig. 4: RPS 10..50, the paper's
// prototype optimizations (routing + TC).
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		RPSLevels: []float64{10, 20, 30, 40, 50},
		Opt:       PaperOptimizations(),
	}
}

// RunSweep reproduces the Fig. 4 experiment: for each RPS level, one
// baseline run and one optimized run of the mixed workload.
func RunSweep(cfg SweepConfig) []SweepPoint {
	if len(cfg.RPSLevels) == 0 {
		cfg.RPSLevels = DefaultSweepConfig().RPSLevels
	}
	if !cfg.Opt.Any() {
		cfg.Opt = PaperOptimizations()
	}
	// Each (level, arm) pair is an independent simulation; flatten them
	// so base and opt arms of every level run concurrently. Shared row
	// fields are filled in before the parallel section; each worker then
	// writes only its own arm's result slot.
	out := make([]SweepPoint, len(cfg.RPSLevels))
	for i, rps := range cfg.RPSLevels {
		out[i].RPS = rps
	}
	runIndexedWorkers(2*len(out), cfg.Workers, func(k int) {
		i := k / 2
		mixed := MixedConfig{RPS: out[i].RPS, Seed: cfg.Seed, Warmup: cfg.Warmup, Measure: cfg.Measure, Cooldown: cfg.Cooldown}
		if k%2 == 0 {
			out[i].Base = RunMixedOnce(None(), mixed)
		} else {
			out[i].Opt = RunMixedOnce(cfg.Opt, mixed)
		}
	})
	return out
}

// FormatFig4 renders the latency-sensitive series of the sweep — the
// four curves of the paper's Fig. 4 — plus the speedup columns (the
// §4.3 "≈1.5x" claim, E3).
func FormatFig4(points []SweepPoint) string {
	t := newTable("RPS", "base p50", "opt p50", "x p50", "base p99", "opt p99", "x p99")
	for _, p := range points {
		t.row(
			fmt.Sprintf("%.0f", p.RPS),
			ms(p.Base.LS.P50), ms(p.Opt.LS.P50), ratio(p.Base.LS.P50, p.Opt.LS.P50),
			ms(p.Base.LS.P99), ms(p.Opt.LS.P99), ratio(p.Base.LS.P99, p.Opt.LS.P99),
		)
	}
	return "Fig. 4 — latency-sensitive HTTP request latency vs offered load\n" + t.String()
}

// FormatLICost renders the latency-insensitive side of the sweep — the
// E2 "<5% p99 increase" claim.
func FormatLICost(points []SweepPoint) string {
	t := newTable("RPS", "base p50", "opt p50", "base p99", "opt p99", "p99 delta")
	for _, p := range points {
		delta := "n/a"
		if p.Base.LI.P99 > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(float64(p.Opt.LI.P99)/float64(p.Base.LI.P99)-1))
		}
		t.row(
			fmt.Sprintf("%.0f", p.RPS),
			ms(p.Base.LI.P50), ms(p.Opt.LI.P50),
			ms(p.Base.LI.P99), ms(p.Opt.LI.P99), delta,
		)
	}
	return "E2 — latency-insensitive workload cost of prioritization\n" + t.String()
}

// ChartFig4 renders the sweep as an ASCII line chart — the visual form
// of the paper's Figure 4.
func ChartFig4(points []SweepPoint) string {
	var xs, basep50, optp50, basep99, optp99 []float64
	for _, p := range points {
		xs = append(xs, p.RPS)
		basep50 = append(basep50, msFloat(p.Base.LS.P50))
		optp50 = append(optp50, msFloat(p.Opt.LS.P50))
		basep99 = append(basep99, msFloat(p.Base.LS.P99))
		optp99 = append(optp99, msFloat(p.Opt.LS.P99))
	}
	c := asciiplot.Chart{
		Title:  "Fig. 4 — latency-sensitive request latency vs offered load",
		XLabel: "requests per second (per workload)",
		YLabel: "latency (ms)",
		Width:  64,
		Height: 18,
		Series: []asciiplot.Series{
			{Name: "w/o cross-layer optimization (p50)", X: xs, Y: basep50},
			{Name: "w/ cross-layer optimization (p50)", X: xs, Y: optp50},
			{Name: "w/o cross-layer optimization (p99)", X: xs, Y: basep99},
			{Name: "w/ cross-layer optimization (p99)", X: xs, Y: optp99},
		},
	}
	return c.Render()
}

// CSVFig4 renders the sweep as CSV for external plotting.
func CSVFig4(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("rps,ls_base_p50_ms,ls_opt_p50_ms,ls_base_p99_ms,ls_opt_p99_ms,li_base_p99_ms,li_opt_p99_ms\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.0f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			p.RPS,
			msFloat(p.Base.LS.P50), msFloat(p.Opt.LS.P50),
			msFloat(p.Base.LS.P99), msFloat(p.Opt.LS.P99),
			msFloat(p.Base.LI.P99), msFloat(p.Opt.LI.P99))
	}
	return b.String()
}

func msFloat(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ---------- E4: sidecar overhead ----------

// OverheadRow is one configuration of the sidecar-overhead experiment.
type OverheadRow struct {
	Name          string
	Proxies       int
	P50, P90, P99 time.Duration
	OverheadP50   time.Duration // vs the no-proxy baseline row
	OverheadP99   time.Duration
}

// RunSidecarOverhead measures the added latency of interposed sidecars
// on an unloaded single service call (§3.6: ~3 ms p99 for Istio's two
// proxies). n is the number of sampled requests.
func RunSidecarOverhead(n int, seed int64) []OverheadRow {
	if n <= 0 {
		n = 2000
	}
	measure := func(delay time.Duration) *hdr.Histogram {
		c := app.BuildChain(app.ChainConfig{
			Depth:       1,
			ServiceTime: 100 * time.Microsecond,
			Mesh:        mesh.Config{SidecarDelayMean: delay, Seed: seed},
		})
		h := hdr.New()
		var next func(i int)
		next = func(i int) {
			if i >= n {
				return
			}
			start := c.Sched.Now()
			c.Gateway.Serve(app.NewChainRequest(), func(*httpsim.Response, error) {
				h.RecordDuration(c.Sched.Now() - start)
				c.Sched.After(time.Millisecond, func() { next(i + 1) })
			})
		}
		next(0)
		c.Sched.Run()
		return h
	}

	delays := []time.Duration{
		-1, // proxy processing disabled
		mesh.DefaultSidecarDelay,
		4 * mesh.DefaultSidecarDelay,
	}
	hists := make([]*hdr.Histogram, len(delays))
	runIndexed(len(delays), func(i int) { hists[i] = measure(delays[i]) })
	base, withProxies, heavy := hists[0], hists[1], hists[2]

	mk := func(name string, proxies int, h *hdr.Histogram) OverheadRow {
		return OverheadRow{
			Name:        name,
			Proxies:     proxies,
			P50:         h.QuantileDuration(0.50),
			P90:         h.QuantileDuration(0.90),
			P99:         h.QuantileDuration(0.99),
			OverheadP50: h.QuantileDuration(0.50) - base.QuantileDuration(0.50),
			OverheadP99: h.QuantileDuration(0.99) - base.QuantileDuration(0.99),
		}
	}
	return []OverheadRow{
		mk("no proxy overhead", 0, base),
		mk("2 sidecars (default cost)", 2, withProxies),
		mk("2 sidecars (4x cost)", 2, heavy),
	}
}

// FormatOverhead renders the E4 table.
func FormatOverhead(rows []OverheadRow) string {
	t := newTable("configuration", "p50", "p90", "p99", "added p50", "added p99")
	for _, r := range rows {
		t.row(r.Name, ms(r.P50), ms(r.P90), ms(r.P99), ms(r.OverheadP50), ms(r.OverheadP99))
	}
	return "E4 — per-request latency with sidecars interposed (unloaded)\n" + t.String()
}

// ---------- E5: ablation ----------

// AblationRow measures one optimization combination at a fixed load.
type AblationRow struct {
	Name         string
	LSP50, LSP99 time.Duration
	LIP99        time.Duration
	LSCount      uint64
}

// RunAblation measures each §4.2(3) optimization's contribution at the
// given per-workload RPS.
func RunAblation(rps float64, seed int64, mixed MixedConfig) []AblationRow {
	mixed.RPS = rps
	mixed.Seed = seed
	combos := []struct {
		name string
		opt  Optimization
	}{
		{"baseline", None()},
		{"routing only (3a)", Optimization{Routing: true}},
		{"routing+tc (paper §4.3)", Optimization{Routing: true, TC: true}},
		{"routing+tc+scavenger", Optimization{Routing: true, TC: true, Scavenger: true}},
		{"all (+sdn)", AllOptimizations()},
	}
	out := make([]AblationRow, len(combos))
	runIndexed(len(combos), func(i int) {
		c := combos[i]
		r := RunMixedOnce(c.opt, mixed)
		out[i] = AblationRow{
			Name:  c.name,
			LSP50: r.LS.P50, LSP99: r.LS.P99,
			LIP99:   r.LI.P99,
			LSCount: r.LS.Count,
		}
	})
	return out
}

// FormatAblation renders the E5 table.
func FormatAblation(rows []AblationRow, rps float64) string {
	t := newTable("optimizations", "LS p50", "LS p99", "LI p99")
	for _, r := range rows {
		t.row(r.Name, ms(r.LSP50), ms(r.LSP99), ms(r.LIP99))
	}
	return fmt.Sprintf("E5 — ablation at %.0f RPS per workload\n%s", rps, t.String())
}

// ---------- E6: scavenger transport ----------

// ScavengerRow measures one congestion controller carrying the bulk
// (LI) flow while short latency-sensitive transfers share a bottleneck.
type ScavengerRow struct {
	CC            string
	LSP50, LSP99  time.Duration // flow completion time of short transfers
	BulkMbps      float64       // bulk goodput while competing
	BulkAloneMbps float64       // bulk goodput on an idle link
}

// RunScavenger reproduces the §4.2(3b) mechanism in isolation on a
// dumbbell: a long-lived bulk flow (the LI class) and periodic 100 KB
// latency-sensitive transfers share a 100 Mbps bottleneck; the bulk
// flow's congestion controller varies per row.
func RunScavenger(seed int64) []ScavengerRow {
	const (
		bottleneck = 100 * simnet.Mbps
		lsSize     = 100 << 10
		runFor     = 30 * time.Second
	)
	ccs := []string{"reno", "cubic", "lp", "ledbat"}
	out := make([]ScavengerRow, len(ccs))
	// Two independent runs per controller: competing (even k) and solo
	// (odd k — the scavenger must still use an idle link fully).
	runIndexed(2*len(ccs), func(k int) {
		cc := ccs[k/2]
		if k%2 == 0 {
			fct, bulkBytes := scavengerRun(cc, bottleneck, lsSize, runFor, true)
			out[k/2].CC = cc
			out[k/2].LSP50 = fct.QuantileDuration(0.50)
			out[k/2].LSP99 = fct.QuantileDuration(0.99)
			out[k/2].BulkMbps = float64(bulkBytes) * 8 / runFor.Seconds() / 1e6
		} else {
			_, soloBytes := scavengerRun(cc, bottleneck, lsSize, runFor, false)
			out[k/2].BulkAloneMbps = float64(soloBytes) * 8 / runFor.Seconds() / 1e6
		}
	})
	return out
}

func scavengerRun(cc string, rate int64, lsSize int, runFor time.Duration, withLS bool) (*hdr.Histogram, uint64) {
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	src1 := net.AddNode("ls-src")
	src2 := net.AddNode("bulk-src")
	sw := net.AddNode("sw")
	dst := net.AddNode("dst")
	fast := simnet.LinkConfig{Rate: 10 * rate, Delay: 200 * time.Microsecond}
	net.Connect(src1, sw, fast)
	net.Connect(src2, sw, fast)
	net.Connect(sw, dst, simnet.LinkConfig{Rate: rate, Delay: 200 * time.Microsecond, QueueBytes: 200 * simnet.MTU})

	h1, h2, hd := transport.NewHost(src1), transport.NewHost(src2), transport.NewHost(dst)
	fct := hdr.New()

	hd.Listen(80, func(c *transport.Conn) { c.SetOnMessage(func(any, int) {}) })

	bulk := h2.Dial(dst.Addr(), 80, transport.Options{CC: cc})
	bulk.SendMessage("bulk", 10<<30) // effectively unbounded

	if withLS {
		// A fresh short transfer every 250 ms, each on its own
		// connection (FCT includes the handshake, as a fresh RPC would).
		var fire func()
		fire = func() {
			if sched.Now() >= runFor {
				return
			}
			start := sched.Now()
			conn := h1.Dial(dst.Addr(), 80, transport.Options{CC: "reno"})
			conn.SendMessage("ls", lsSize)
			conn.SetOnClose(func(error) {})
			// Completion observed at the sender: all bytes acked.
			poll := func() {}
			poll = func() {
				if conn.BytesAcked() >= uint64(lsSize) {
					fct.RecordDuration(sched.Now() - start)
					conn.Close()
					return
				}
				sched.After(time.Millisecond, poll)
			}
			sched.After(time.Millisecond, poll)
			sched.After(250*time.Millisecond, fire)
		}
		fire()
	}
	sched.RunUntil(runFor)
	return fct, bulk.BytesAcked()
}

// FormatScavenger renders the E6 table.
func FormatScavenger(rows []ScavengerRow) string {
	t := newTable("bulk CC", "LS fct p50", "LS fct p99", "bulk Mbps (shared)", "bulk Mbps (alone)")
	for _, r := range rows {
		t.row(r.CC, ms(r.LSP50), ms(r.LSP99),
			fmt.Sprintf("%.1f", r.BulkMbps), fmt.Sprintf("%.1f", r.BulkAloneMbps))
	}
	return "E6 — scavenger transports yield the bottleneck to short transfers\n" + t.String()
}

// ---------- E7: adaptive replica selection ----------

// LBRow measures one load-balancing policy on a skewed replica set.
type LBRow struct {
	Policy    mesh.LBPolicy
	P50, P99  time.Duration
	SlowShare float64 // fraction of requests served by the slow replica
}

// RunAdaptiveLB compares LB policies against a service with one
// degraded replica (§3.4's adaptive replica selection direction).
func RunAdaptiveLB(rps float64, seed int64) []LBRow {
	if rps <= 0 {
		rps = 50
	}
	policies := []mesh.LBPolicy{mesh.LBRoundRobin, mesh.LBRandom, mesh.LBLeastRequest, mesh.LBEWMA}
	out := make([]LBRow, len(policies))
	runIndexed(len(policies), func(i int) { out[i] = runLBOnce(policies[i], rps, seed) })
	return out
}

func runLBOnce(policy mesh.LBPolicy, rps float64, seed int64) LBRow {
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)
	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}})
	var pods []*cluster.Pod
	for i := 1; i <= 3; i++ {
		pods = append(pods, cl.AddPod(cluster.PodSpec{
			Name:    fmt.Sprintf("api-%d", i),
			Labels:  map[string]string{"app": "api"},
			Workers: 8,
		}))
	}
	cl.AddService("api", 9080, map[string]string{"app": "api"})
	m := mesh.New(cl, mesh.Config{Seed: seed})
	gw := m.NewGateway(gwPod)
	m.ControlPlane().SetLBPolicy("api", policy)

	served := map[string]uint64{}
	for i, pod := range pods {
		pod := pod
		svcTime := 2 * time.Millisecond
		if i == 0 {
			svcTime = 25 * time.Millisecond // the degraded replica
		}
		sc := m.InjectSidecar(pod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			served[pod.Name()]++
			pod.Exec(svcTime, func() {
				out := httpsim.NewResponse(httpsim.StatusOK)
				out.BodyBytes = 4 << 10
				respond(out)
			})
		})
	}

	g := workload.Start(sched, gw, workload.Spec{
		Name: string(policy), Rate: rps, Seed: seed + 5,
		NewRequest: func() *httpsim.Request {
			r := httpsim.NewRequest("GET", "/api")
			r.Headers.Set(mesh.HeaderHost, "api")
			return r
		},
		Warmup: 2 * time.Second, Measure: 20 * time.Second, Cooldown: time.Second,
	})
	sched.RunFor(25 * time.Second)
	r := g.Results()
	var total uint64
	for _, c := range served {
		total += c
	}
	slowShare := 0.0
	if total > 0 {
		slowShare = float64(served["api-1"]) / float64(total)
	}
	return LBRow{Policy: policy, P50: r.P50(), P99: r.P99(), SlowShare: slowShare}
}

// FormatAdaptiveLB renders the E7 table.
func FormatAdaptiveLB(rows []LBRow) string {
	t := newTable("policy", "p50", "p99", "slow-replica share")
	for _, r := range rows {
		t.row(string(r.Policy), ms(r.P50), ms(r.P99), fmt.Sprintf("%.2f", r.SlowShare))
	}
	return "E7 — adaptive replica selection with one degraded replica\n" + t.String()
}

// ---------- E8: redundant requests ----------

// HedgeRow measures tail latency with and without request hedging.
type HedgeRow struct {
	Name           string
	P50, P99, P999 time.Duration
	Count          uint64
}

// RunRedundant reproduces the "low latency via redundancy" direction
// (§3.4 ref [50]): the recs service has a heavy-tailed service time;
// hedged requests cut the tail.
func RunRedundant(rps float64, seed int64) []HedgeRow {
	if rps <= 0 {
		rps = 30
	}
	run := func(hedge bool) HedgeRow {
		ec := app.BuildECommerce(app.ECommerceConfig{Seed: seed, RecsSlowProb: 0.05, RecsSlowTime: 80 * time.Millisecond})
		if hedge {
			ec.Mesh.ControlPlane().SetHedgePolicy("recs", mesh.HedgePolicy{Delay: 10 * time.Millisecond})
		}
		g := workload.Start(ec.Sched, ec.Gateway, workload.Spec{
			Name: "store", Rate: rps, Seed: seed + 3,
			NewRequest: app.NewStorefrontRequest,
			Warmup:     2 * time.Second, Measure: 20 * time.Second, Cooldown: time.Second,
		})
		ec.Sched.RunFor(25 * time.Second)
		r := g.Results()
		name := "no hedging"
		if hedge {
			name = "hedge after 10ms"
		}
		return HedgeRow{
			Name: name,
			P50:  r.P50(), P99: r.P99(),
			P999:  r.Hist.QuantileDuration(0.999),
			Count: r.Measured,
		}
	}
	out := make([]HedgeRow, 2)
	runIndexed(2, func(i int) { out[i] = run(i == 1) })
	return out
}

// FormatRedundant renders the E8 table.
func FormatRedundant(rows []HedgeRow) string {
	t := newTable("configuration", "p50", "p99", "p99.9")
	for _, r := range rows {
		t.row(r.Name, ms(r.P50), ms(r.P99), ms(r.P999))
	}
	return "E8 — redundant requests against a heavy-tailed replica\n" + t.String()
}

// ---------- E9: hop depth ----------

// HopRow measures request latency at one chain depth.
type HopRow struct {
	Depth    int
	P50, P99 time.Duration
	PerHop   time.Duration // p50 divided by depth
}

// RunHopDepth measures how sidecar costs accumulate over deep call
// chains (§3.6: "costly for latency-sensitive apps involving tens of
// hops among microservices").
func RunHopDepth(depths []int, n int, seed int64) []HopRow {
	if len(depths) == 0 {
		depths = []int{1, 2, 4, 8, 16, 32}
	}
	if n <= 0 {
		n = 500
	}
	out := make([]HopRow, len(depths))
	runIndexed(len(depths), func(k int) {
		d := depths[k]
		c := app.BuildChain(app.ChainConfig{Depth: d, Mesh: mesh.Config{Seed: seed}})
		h := hdr.New()
		var next func(i int)
		next = func(i int) {
			if i >= n {
				return
			}
			start := c.Sched.Now()
			c.Gateway.Serve(app.NewChainRequest(), func(*httpsim.Response, error) {
				h.RecordDuration(c.Sched.Now() - start)
				c.Sched.After(time.Millisecond, func() { next(i + 1) })
			})
		}
		next(0)
		c.Sched.Run()
		out[k] = HopRow{
			Depth:  d,
			P50:    h.QuantileDuration(0.50),
			P99:    h.QuantileDuration(0.99),
			PerHop: h.QuantileDuration(0.50) / time.Duration(d),
		}
	})
	return out
}

// FormatHopDepth renders the E9 table.
func FormatHopDepth(rows []HopRow) string {
	t := newTable("depth", "p50", "p99", "p50 per hop")
	for _, r := range rows {
		t.row(fmt.Sprint(r.Depth), ms(r.P50), ms(r.P99), ms(r.PerHop))
	}
	return "E9 — latency accumulation over chain depth\n" + t.String()
}

// ---------- E10: bottleneck-rate sweep (extension) ----------

// BottleneckRow measures one bottleneck capacity at fixed load.
type BottleneckRow struct {
	RateGbps            float64
	BaseP99, OptP99     time.Duration
	BaseLIP99, OptLIP99 time.Duration
}

// RunBottleneckSweep varies the ratings uplink capacity at a fixed
// 40 RPS mixed load, locating where prioritization stops mattering
// (an extension beyond the paper's single 1 Gbps point).
func RunBottleneckSweep(ratesGbps []float64, seed int64, mixed MixedConfig) []BottleneckRow {
	if len(ratesGbps) == 0 {
		ratesGbps = []float64{0.5, 1, 2, 4}
	}
	if mixed.RPS == 0 {
		mixed.RPS = 40
	}
	mixed.Seed = seed
	out := make([]BottleneckRow, len(ratesGbps))
	for i, g := range ratesGbps {
		out[i].RateGbps = g
	}
	runIndexed(2*len(out), func(k int) {
		i := k / 2
		appCfg := app.DefaultELibraryConfig()
		appCfg.BottleneckRate = int64(out[i].RateGbps * float64(simnet.Gbps))
		run := func(opt Optimization) MixedResult {
			s := NewScenario(ScenarioConfig{Opt: opt, Seed: seed, App: appCfg})
			return s.RunMixed(mixed)
		}
		if k%2 == 0 {
			base := run(None())
			out[i].BaseP99, out[i].BaseLIP99 = base.LS.P99, base.LI.P99
		} else {
			opt := run(PaperOptimizations())
			out[i].OptP99, out[i].OptLIP99 = opt.LS.P99, opt.LI.P99
		}
	})
	return out
}

// FormatBottleneck renders the E10 table.
func FormatBottleneck(rows []BottleneckRow) string {
	t := newTable("bottleneck", "LS base p99", "LS opt p99", "x p99", "LI base p99", "LI opt p99")
	for _, r := range rows {
		t.row(fmt.Sprintf("%.1f Gbps", r.RateGbps),
			ms(r.BaseP99), ms(r.OptP99), ratio(r.BaseP99, r.OptP99),
			ms(r.BaseLIP99), ms(r.OptLIP99))
	}
	return "E10 — where prioritization matters: bottleneck capacity sweep (40 RPS)\n" + t.String()
}

// ---------- E11: workload-skew sweep (extension) ----------

// SkewRow measures one LI response size (the paper's "~200x larger"
// parameter) at fixed load.
type SkewRow struct {
	LIMB            float64 // LI ratings response in MB
	SkewFactor      float64 // LI bytes / LS page bytes
	BaseP99, OptP99 time.Duration
}

// RunSkewSweep varies how much larger the latency-insensitive
// responses are, at a fixed 40 RPS mixed load.
func RunSkewSweep(liMB []float64, seed int64, mixed MixedConfig) []SkewRow {
	if len(liMB) == 0 {
		liMB = []float64{0.5, 1, 2, 4}
	}
	if mixed.RPS == 0 {
		mixed.RPS = 40
	}
	mixed.Seed = seed
	out := make([]SkewRow, len(liMB))
	for i, mb := range liMB {
		appCfg := app.DefaultELibraryConfig()
		appCfg.LIRatingsBytes = int(mb * float64(1<<20))
		out[i].LIMB = mb
		out[i].SkewFactor = float64(appCfg.LIRatingsBytes) / float64(appCfg.LSFrontendBytes+appCfg.LSReviewsBytes)
	}
	runIndexed(2*len(out), func(k int) {
		i := k / 2
		appCfg := app.DefaultELibraryConfig()
		appCfg.LIRatingsBytes = int(out[i].LIMB * float64(1<<20))
		run := func(opt Optimization) MixedResult {
			s := NewScenario(ScenarioConfig{Opt: opt, Seed: seed, App: appCfg})
			return s.RunMixed(mixed)
		}
		if k%2 == 0 {
			out[i].BaseP99 = run(None()).LS.P99
		} else {
			out[i].OptP99 = run(PaperOptimizations()).LS.P99
		}
	})
	return out
}

// FormatSkew renders the E11 table.
func FormatSkew(rows []SkewRow) string {
	t := newTable("LI response", "skew", "LS base p99", "LS opt p99", "x p99")
	for _, r := range rows {
		t.row(fmt.Sprintf("%.1f MB", r.LIMB), fmt.Sprintf("%.0fx", r.SkewFactor),
			ms(r.BaseP99), ms(r.OptP99), ratio(r.BaseP99, r.OptP99))
	}
	return "E11 — sensitivity to workload skew (LI response size, 40 RPS)\n" + t.String()
}

// ---------- E13: AQM vs priority queueing (extension) ----------

// QdiscRow measures one bottleneck queueing discipline under the mixed
// workload.
type QdiscRow struct {
	Name         string
	LSP50, LSP99 time.Duration
	LIP99        time.Duration
}

// RunQdiscComparison isolates the packet-scheduling half of the paper's
// argument: with priority routing (and marks) in place, the ratings
// bottleneck runs droptail FIFO, RED, CoDel, or the paper's
// nearly-strict priority discipline. AQMs bound queueing delay for
// everyone but cannot *differentiate* — only the class-aware qdisc
// protects the latency-sensitive tail outright.
func RunQdiscComparison(rps float64, seed int64, mixed MixedConfig) []QdiscRow {
	if rps <= 0 {
		rps = 40
	}
	mixed.RPS = rps
	mixed.Seed = seed

	variants := []string{"fifo (droptail)", "red", "codel", "nearstrict 95% (paper)"}
	out := make([]QdiscRow, len(variants))
	runIndexed(len(variants), func(i int) {
		name := variants[i]
		s := NewScenario(ScenarioConfig{Opt: Optimization{Routing: true}, Seed: seed})
		e := s.App
		clock := e.Sched.Now
		rate := e.Ratings.Uplink().Config().Rate
		for _, nic := range []*simnet.NIC{e.Ratings.Uplink().A(), e.Ratings.Uplink().B()} {
			switch name {
			case "red":
				nic.SetQdisc(tc.NewRED(tc.REDConfig{
					MinBytes: 100 * simnet.MTU, MaxBytes: 400 * simnet.MTU, Seed: seed,
				}))
			case "codel":
				nic.SetQdisc(tc.NewCoDel(tc.CoDelConfig{Target: 5 * time.Millisecond}, clock))
			case "nearstrict 95% (paper)":
				nic.SetQdisc(tc.NewNearStrict(tc.NearStrictConfig{LinkRate: rate, HighShare: 0.95}, clock))
			}
		}
		r := s.RunMixed(mixed)
		out[i] = QdiscRow{Name: name, LSP50: r.LS.P50, LSP99: r.LS.P99, LIP99: r.LI.P99}
	})
	return out
}

// FormatQdiscComparison renders the E13 table.
func FormatQdiscComparison(rows []QdiscRow, rps float64) string {
	t := newTable("bottleneck qdisc", "LS p50", "LS p99", "LI p99")
	for _, r := range rows {
		t.row(r.Name, ms(r.LSP50), ms(r.LSP99), ms(r.LIP99))
	}
	return fmt.Sprintf("E13 — AQM vs class-aware scheduling at the bottleneck (%.0f RPS, routing on)\n%s", rps, t.String())
}

// ---------- E12: resilience under partition (extension) ----------

// ResilienceRow is one phase of the partition experiment under one
// resilience configuration.
type ResilienceRow struct {
	Config    string
	Phase     string // "before" | "during" | "after"
	ErrorRate float64
	P50, P99  time.Duration
}

// RunResilience partitions one reviews replica mid-run and measures
// the latency-sensitive workload before, during, and after, with the
// mesh's resilience machinery (retries + circuit breaking) off and on.
// It isolates what the sidecar layer itself buys an application when
// infrastructure misbehaves.
func RunResilience(rps float64, seed int64) []ResilienceRow {
	if rps <= 0 {
		rps = 30
	}
	const phase = 10 * time.Second
	run := func(resilient bool) []ResilienceRow {
		s := NewScenario(ScenarioConfig{Seed: seed})
		e := s.App
		cp := e.Mesh.ControlPlane()
		if resilient {
			cp.SetRetryPolicy("reviews", mesh.RetryPolicy{MaxRetries: 2, PerTryTimeout: 250 * time.Millisecond, RetryOn5xx: true})
			cp.SetCircuitBreaker("reviews", mesh.CircuitBreakerPolicy{ConsecutiveFailures: 2, OpenFor: 5 * time.Second})
		} else {
			cp.SetRetryPolicy("reviews", mesh.RetryPolicy{PerTryTimeout: 250 * time.Millisecond})
			cp.SetCircuitBreaker("reviews", mesh.CircuitBreakerPolicy{ConsecutiveFailures: 1 << 30, OpenFor: time.Second})
		}

		spec := func(seed int64) workload.Spec {
			return workload.Spec{
				Name: "ls", Rate: rps, NewRequest: app.NewProductRequest, Seed: seed,
				Warmup: time.Second, Measure: phase - 2*time.Second, Cooldown: time.Second,
			}
		}
		g1 := workload.Start(e.Sched, e.Gateway, spec(seed+1))
		var g2, g3 *workload.Generator
		e.Sched.At(phase, func() {
			e.Reviews[0].Partition(true)
			g2 = workload.Start(e.Sched, e.Gateway, spec(seed+2))
		})
		e.Sched.At(2*phase, func() {
			e.Reviews[0].Partition(false)
			g3 = workload.Start(e.Sched, e.Gateway, spec(seed+3))
		})
		e.Sched.RunUntil(3*phase + 2*time.Second)

		name := "no resilience"
		if resilient {
			name = "retries + circuit breaking"
		}
		mk := func(phaseName string, g *workload.Generator) ResilienceRow {
			r := g.Results()
			total := r.Measured + r.Errors
			rate := 0.0
			if total > 0 {
				rate = float64(r.Errors) / float64(total)
			}
			return ResilienceRow{Config: name, Phase: phaseName, ErrorRate: rate, P50: r.P50(), P99: r.P99()}
		}
		return []ResilienceRow{mk("before", g1), mk("during partition", g2), mk("after heal", g3)}
	}
	var halves [2][]ResilienceRow
	runIndexed(2, func(i int) { halves[i] = run(i == 1) })
	return append(halves[0], halves[1]...)
}

// FormatResilience renders the E12 table.
func FormatResilience(rows []ResilienceRow) string {
	t := newTable("configuration", "phase", "error rate", "p50", "p99")
	for _, r := range rows {
		t.row(r.Config, r.Phase, fmt.Sprintf("%.1f%%", 100*r.ErrorRate), ms(r.P50), ms(r.P99))
	}
	return "E12 — one reviews replica partitioned mid-run (LS workload)\n" + t.String()
}

// ---------- E14: overload protection (extension) ----------

// Overload experiment fixed points: a single-pod api tier with
// overloadAPIWorkers workers of overloadAPITime service time, so its
// capacity is workers/serviceTime = 200 requests/second — small enough
// to overload cheaply, large enough for stable statistics.
const (
	overloadAPIWorkers = 4
	overloadAPITime    = 20 * time.Millisecond
	overloadBudget     = 200 * time.Millisecond
	// overloadLSShare is the latency-sensitive fraction of offered
	// load; the rest is low-importance.
	overloadLSShare = 0.25
)

// OverloadCapacity returns the api tier's nominal capacity in
// requests per second.
func OverloadCapacity() float64 {
	return float64(overloadAPIWorkers) / overloadAPITime.Seconds()
}

// OverloadRow is one (configuration, offered load) cell of the
// overload experiment.
type OverloadRow struct {
	Config string
	// Load is the offered load as a multiple of api capacity.
	Load         float64
	LSP50, LSP99 time.Duration
	// LSGoodput and LIGoodput are in-window successful completions as
	// a fraction of that class's offered load.
	LSGoodput, LIGoodput float64
	// Shed counts admission rejections (503/504) at the api sidecar.
	Shed uint64
	// Cancelled counts child calls cancelled by deadline propagation
	// before reaching the backend.
	Cancelled uint64
	// BackendWork counts requests the backend actually executed — the
	// downstream work metric deadline propagation is meant to cut.
	BackendWork uint64
}

// RunOverload measures the admission-control subsystem under offered
// loads below and past the api tier's capacity, across four
// configurations: no protection, deadline propagation only, admission
// (queue + adaptive concurrency limit) only, and both. The topology is
// gateway -> api (the bottleneck) -> backend, with a 1:3 LS:LI mix and
// retries disabled so shed fast-fails are not re-amplified.
func RunOverload(seed int64, warmup, measure time.Duration) []OverloadRow {
	if warmup <= 0 {
		warmup = 2 * time.Second
	}
	if measure <= 0 {
		measure = 20 * time.Second
	}
	configs := []struct {
		name                string
		admission, deadline bool
	}{
		{"disabled", false, false},
		{"deadline only", false, true},
		{"admission", true, false},
		{"admission + deadline", true, true},
	}
	loads := []float64{0.5, 2.0}
	out := make([]OverloadRow, len(configs)*len(loads))
	runIndexed(len(out), func(k int) {
		cfg := configs[k/len(loads)]
		load := loads[k%len(loads)]
		out[k] = runOverloadOnce(cfg.name, cfg.admission, cfg.deadline, load, seed, warmup, measure)
	})
	return out
}

func runOverloadOnce(name string, admit, deadline bool, load float64, seed int64, warmup, measure time.Duration) OverloadRow {
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)
	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}})
	apiPod := cl.AddPod(cluster.PodSpec{Name: "api-1", Labels: map[string]string{"app": "api"}, Workers: overloadAPIWorkers})
	bePod := cl.AddPod(cluster.PodSpec{Name: "backend-1", Labels: map[string]string{"app": "backend"}, Workers: 32})
	cl.AddService("api", 9080, map[string]string{"app": "api"})
	cl.AddService("backend", 9080, map[string]string{"app": "backend"})

	m := mesh.New(cl, mesh.Config{Seed: seed})
	gw := m.NewGateway(gwPod)
	apiSC := m.InjectSidecar(apiPod)
	beSC := m.InjectSidecar(bePod)
	gw.SetClassifier(mesh.PathClassifier(map[string]string{
		"/ls": mesh.PriorityHigh,
		"/li": mesh.PriorityLow,
	}, mesh.PriorityHigh))

	cp := m.ControlPlane()
	// Sheds and deadline rejections are deliberate fast-fails;
	// retrying them would re-amplify exactly the load being shed.
	cp.SetRetryPolicy("api", mesh.RetryPolicy{})
	cp.SetRetryPolicy("backend", mesh.RetryPolicy{})
	pol := mesh.AdmissionPolicy{
		Enabled:            admit,
		QueueLimit:         128,
		QueueTarget:        10 * time.Millisecond,
		QueueLSTarget:      50 * time.Millisecond,
		QueueInterval:      50 * time.Millisecond,
		InitialConcurrency: overloadAPIWorkers,
		MinConcurrency:     2,
		// Under sustained overload every latency sample includes
		// worker-pool queueing, so the limiter's no-load floor drifts
		// up and stops pulling the limit down; the Max bound encodes
		// what the floor cannot rediscover — the pod has 4 workers, so
		// concurrency past ~2x workers only buys queueing delay.
		MaxConcurrency: 2 * overloadAPIWorkers,
	}
	if deadline {
		pol.Budget = overloadBudget
	}
	cp.SetAdmissionPolicy("api", pol)

	var backendWork uint64
	beSC.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		backendWork++
		bePod.Exec(time.Millisecond, func() { respond(httpsim.NewResponse(httpsim.StatusOK)) })
	})
	apiSC.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		apiPod.Exec(overloadAPITime, func() {
			child := httpsim.NewRequest("GET", "/data")
			child.Headers.Set(mesh.HeaderHost, "backend")
			app.CopyTrace(req, child)
			apiSC.Call(child, func(resp *httpsim.Response, err error) {
				if err != nil {
					respond(httpsim.NewResponse(httpsim.StatusBadGateway))
					return
				}
				respond(httpsim.NewResponse(resp.Status))
			})
		})
	})

	capacity := OverloadCapacity()
	lsRate := overloadLSShare * load * capacity
	liRate := (1 - overloadLSShare) * load * capacity

	// Goodput counts successful completions inside the measure window
	// by completion time, against the class's offered load — so work
	// finished late (after cooldown) or shed doesn't count.
	winLo, winHi := warmup, warmup+measure
	goodCounter := func(good *uint64) func(at, latency time.Duration, failed bool) {
		return func(at, latency time.Duration, failed bool) {
			if !failed && at >= winLo && at < winHi {
				*good++
			}
		}
	}
	var lsGood, liGood uint64
	mkSpec := func(wlName, path string, rate float64, seedOff int64, good *uint64) workload.Spec {
		return workload.Spec{
			Name: wlName, Rate: rate, Seed: seed + seedOff,
			NewRequest: func() *httpsim.Request {
				r := httpsim.NewRequest("GET", path)
				r.Headers.Set(mesh.HeaderHost, "api")
				return r
			},
			Warmup: warmup, Measure: measure, Cooldown: time.Second,
			OnComplete: goodCounter(good),
		}
	}
	ls := workload.Start(sched, gw, mkSpec("ls", "/ls", lsRate, 11, &lsGood))
	workload.Start(sched, gw, mkSpec("li", "/li", liRate, 13, &liGood))
	sched.RunFor(warmup + measure + 2*time.Second)

	lsRes := ls.Results()
	reg := m.Metrics()
	return OverloadRow{
		Config:      name,
		Load:        load,
		LSP50:       lsRes.P50(),
		LSP99:       lsRes.P99(),
		LSGoodput:   float64(lsGood) / (lsRate * measure.Seconds()),
		LIGoodput:   float64(liGood) / (liRate * measure.Seconds()),
		Shed:        reg.CounterTotal("mesh_admission_shed_total"),
		Cancelled:   reg.CounterTotal("mesh_admission_cancelled_total"),
		BackendWork: backendWork,
	}
}

// FormatOverload renders the E14 table.
func FormatOverload(rows []OverloadRow) string {
	t := newTable("configuration", "load", "LS p50", "LS p99", "LS goodput", "LI goodput", "shed", "cancelled", "backend work")
	for _, r := range rows {
		t.row(r.Config, fmt.Sprintf("%.1fx", r.Load), ms(r.LSP50), ms(r.LSP99),
			fmt.Sprintf("%.1f%%", 100*r.LSGoodput), fmt.Sprintf("%.1f%%", 100*r.LIGoodput),
			fmt.Sprint(r.Shed), fmt.Sprint(r.Cancelled), fmt.Sprint(r.BackendWork))
	}
	return fmt.Sprintf("E14 — overload protection (api capacity %.0f RPS, LS:LI = 1:3, budget %v)\n%s",
		OverloadCapacity(), overloadBudget, t.String())
}

// ---------- E15: chaos suite vs self-healing defenses (extension) ----------

// ChaosRow is one defense configuration measured under the scripted
// chaos suite.
type ChaosRow struct {
	Config         string
	LSP50, LSP99   time.Duration
	LSErrRate      float64
	LIP99          time.Duration
	LIErrRate      float64
	Retries        uint64
	BudgetDenied   uint64
	CrashTTR       time.Duration
	CrashRecovered bool
	Faults         bool
}

// chaosDefenseLevel selects how much of the self-healing stack is on:
// 0 = nothing (single attempts, breaker effectively off), 1 = retries
// + circuit breaking, 2 = + active health checks + outlier detection,
// 3 = + retry budgets with exponential backoff.
func applyChaosDefenses(cp *mesh.ControlPlane, level int) {
	services := []string{"frontend", "details", "reviews", "ratings"}
	for _, svc := range services {
		// Per-try timeouts are tuned per service at every level (they
		// are base config, not a defense rung): they must sit above the
		// worst-case legitimate latency — 2 MB LI transfers queue up to
		// ~330 ms at 30 RPS on the reviews/ratings/frontend paths — or
		// the mesh aborts healthy transfers and retry-amplifies the
		// congestion it caused. details only ever answers in ~3 ms, so
		// it gets a tight timeout that beats transport RTO recovery.
		perTry := time.Second
		if svc == "details" {
			perTry = 60 * time.Millisecond
		}
		retry := mesh.RetryPolicy{MaxRetries: 0, PerTryTimeout: perTry}
		breaker := mesh.CircuitBreakerPolicy{ConsecutiveFailures: 1 << 30, OpenFor: time.Second}
		if level >= 1 {
			retry = mesh.RetryPolicy{MaxRetries: 2, PerTryTimeout: perTry, RetryOn5xx: true}
			breaker = mesh.CircuitBreakerPolicy{ConsecutiveFailures: 5, OpenFor: 2 * time.Second}
		}
		if level >= 3 {
			retry.BackoffBase = time.Millisecond
			retry.BackoffMax = 20 * time.Millisecond
			// Ratio bounds sustained retry traffic; the burst floor
			// must absorb one aborted-connection batch (several
			// pipelined requests retrying at once) without turning
			// first retries into user-visible failures.
			retry.BudgetRatio = 0.25
			retry.BudgetBurst = 10
		}
		cp.SetRetryPolicy(svc, retry)
		cp.SetCircuitBreaker(svc, breaker)
		if level >= 2 {
			cp.SetHealthCheck(svc, mesh.HealthCheckPolicy{
				Interval: 25 * time.Millisecond, Timeout: 20 * time.Millisecond,
				UnhealthyThreshold: 2, HealthyThreshold: 2,
				SlowStart: 1500 * time.Millisecond,
			})
			cp.SetOutlierPolicy(svc, mesh.OutlierPolicy{
				Interval: 100 * time.Millisecond, MinRequests: 3,
				FailureThreshold: 0.4, LatencyFactor: 5,
				BaseEjection: 3 * time.Second, PanicThreshold: 0.5,
			})
		}
	}
}

// chaosSuite is the scripted fault sequence E15 replays against every
// configuration: a pod crash, an error-rate gray failure, a slow-pod
// gray failure, and a loss burst, in disjoint windows across the
// measured interval. Returns the scenario and the crash injection time
// (the TTR anchor).
func chaosSuite(seed int64, warmup, measure time.Duration) (chaos.Scenario, time.Duration) {
	w, m := warmup, measure
	crashAt := w + m/10
	return chaos.Scenario{
		Name: "e15-suite",
		Events: []chaos.Event{
			{At: crashAt, Duration: 3 * m / 20, Fault: chaos.PodCrash{Pod: "reviews-2"}},
			{At: w + 7*m/20, Duration: 3 * m / 20, Fault: chaos.ErrorRate{
				Pod: "ratings-1", Prob: 0.35, Status: 500, Delay: 5 * time.Millisecond, Seed: seed*31 + 1,
			}},
			{At: w + 11*m/20, Duration: 3 * m / 20, Fault: chaos.SlowPod{Pod: "reviews-1", Factor: 20}},
			{At: w + 16*m/20, Duration: m / 10, Fault: chaos.LossBurst{
				Pod: "details-1", Loss: 0.015, Jitter: 300 * time.Microsecond, Seed: seed*31 + 2,
			}},
		},
	}, crashAt
}

// RunChaos measures the e-library under the chaos suite across the
// defense ladder, plus a fault-free baseline for reference. Error
// rates and TTR come from a chaos.Recorder on the LS stream.
func RunChaos(seed int64, warmup, measure time.Duration) []ChaosRow {
	if warmup <= 0 {
		warmup = 2 * time.Second
	}
	if measure <= 0 {
		measure = 20 * time.Second
	}
	configs := []struct {
		name   string
		level  int
		faults bool
	}{
		{"fault-free baseline", 3, false},
		{"no defenses", 0, true},
		{"retries + breaker", 1, true},
		{"+ health checks + outlier detection", 2, true},
		{"+ retry budgets + backoff", 3, true},
	}
	out := make([]ChaosRow, len(configs))
	runIndexed(len(configs), func(i int) {
		c := configs[i]
		out[i] = runChaosOnce(c.name, c.level, c.faults, seed, warmup, measure)
	})
	return out
}

func runChaosOnce(name string, level int, withFaults bool, seed int64, warmup, measure time.Duration) ChaosRow {
	s := NewScenario(ScenarioConfig{Seed: seed})
	e := s.App
	applyChaosDefenses(e.Mesh.ControlPlane(), level)

	suite, crashAt := chaosSuite(seed, warmup, measure)
	if withFaults {
		eng := chaos.NewEngine(&chaos.Target{Sched: e.Sched, Cluster: e.Cluster, Mesh: e.Mesh})
		eng.Schedule(suite)
	}

	// Bucket width is sized so each bucket holds ~10+ LS samples at
	// 30 RPS; much finer and empty buckets read as spurious recovery.
	rec := chaos.NewRecorder(measure / 40)
	r := s.RunMixed(MixedConfig{
		RPS: 30, Seed: seed, Warmup: warmup, Measure: measure,
		LSObserver: rec.Observe,
	})

	errRate := func(ws WorkloadStats) float64 {
		total := ws.Count + ws.Errors
		if total == 0 {
			return 0
		}
		return float64(ws.Errors) / float64(total)
	}
	ttr, recovered := rec.RecoveryTime(crashAt, 3)
	return ChaosRow{
		Config:         name,
		LSP50:          r.LS.P50,
		LSP99:          r.LS.P99,
		LSErrRate:      errRate(r.LS),
		LIP99:          r.LI.P99,
		LIErrRate:      errRate(r.LI),
		Retries:        e.Mesh.Metrics().CounterTotal("mesh_retries_total"),
		BudgetDenied:   e.Mesh.Metrics().CounterTotal("mesh_retry_budget_exhausted_total"),
		CrashTTR:       ttr,
		CrashRecovered: recovered,
		Faults:         withFaults,
	}
}

// FormatChaos renders the E15 table.
func FormatChaos(rows []ChaosRow) string {
	t := newTable("configuration", "LS p50", "LS p99", "LS err", "LI p99", "LI err", "retries", "denied", "crash TTR")
	for _, r := range rows {
		ttr := "-"
		if r.Faults {
			if r.CrashRecovered {
				ttr = ms(r.CrashTTR)
			} else {
				ttr = "never"
			}
		}
		t.row(r.Config, ms(r.LSP50), ms(r.LSP99),
			fmt.Sprintf("%.2f%%", 100*r.LSErrRate),
			ms(r.LIP99), fmt.Sprintf("%.2f%%", 100*r.LIErrRate),
			fmt.Sprint(r.Retries), fmt.Sprint(r.BudgetDenied), ttr)
	}
	return "E15 — chaos suite (crash, error-rate, slow-pod, loss burst) vs self-healing defenses (30 RPS mixed)\n" + t.String()
}

// ---------- formatting helpers ----------

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

func ratio(base, opt time.Duration) string {
	if opt <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(opt))
}

type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table { return &table{headers: headers} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
